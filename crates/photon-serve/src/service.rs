//! The render service: a submission queue feeding a batching dispatcher
//! over the answer store.
//!
//! Request lifecycle:
//!
//! 1. [`RenderService::submit`] enqueues a [`RenderRequest`] and hands back
//!    a [`Ticket`].
//! 2. The dispatcher thread drains the queue in batches (up to
//!    [`ServeConfig::max_batch`] at a time), groups requests by scene so
//!    each stored answer is resolved once per batch, and — when caching is
//!    on — coalesces requests whose quantized [`ViewKey`]s collide, so one
//!    tile-parallel render answers all of them.
//! 3. Misses render across the worker pool
//!    ([`render_parallel`]), land in the
//!    LRU view cache, and every waiter gets an `Arc` of the same image.
//!
//! One dispatcher owns the cache (no lock contention on the hot map); the
//! heavy lifting inside a render is already parallel at tile granularity,
//! so the service saturates cores without concurrent dispatchers.

use crate::cache::{LruCache, ViewKey};
use crate::metrics::{MetricsSnapshot, RequestOutcome, ServiceMetrics, SolverStatsSource};
use crate::render::render_parallel;
use crate::store::{AnswerStore, SceneId, StoredAnswer, WatcherId};
use crate::stream::{FrameDelta, StreamHandle, StreamRequest};
use photon_core::obs::{ObsCtx, ObsKind, Stage};
use photon_core::view::{diff_tiles, Tile};
use photon_core::{Camera, Image, ObsHub};
use photon_math::Rgb;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One view query: which stored answer, seen from where.
#[derive(Clone, Copy, Debug)]
pub struct RenderRequest {
    /// The stored solution to query.
    pub scene_id: SceneId,
    /// The viewpoint.
    pub camera: Camera,
}

/// A served view.
#[derive(Clone, Debug)]
pub struct RenderResponse {
    /// The rendered (or cached) image; shared, never copied per waiter.
    pub image: Arc<Image>,
    /// How the request was satisfied.
    pub outcome: RequestOutcome,
    /// Publication epoch of the answer the image came from — lets clients
    /// of a progressive solve see which refinement they were served.
    pub epoch: u64,
    /// Submission-to-response time.
    pub latency: Duration,
}

impl RenderResponse {
    /// True when the image came from the view cache.
    pub fn from_cache(&self) -> bool {
        self.outcome == RequestOutcome::CacheHit
    }
}

/// Ways a request can fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a scene id the store has never seen.
    UnknownScene(SceneId),
    /// The service shut down before answering.
    ServiceStopped,
    /// [`Ticket::wait_timeout`] gave up before the service answered; the
    /// ticket stays valid, so the caller may wait again.
    TimedOut,
    /// The request can never render (degenerate camera); rejected before
    /// reaching the dispatcher, with the reason attached.
    InvalidRequest(&'static str),
    /// The render panicked mid-job. The dispatcher survived — later
    /// requests are unaffected — but this request produced no image.
    RenderFailed,
    /// The ticket's single response was already collected; waiting again
    /// can never yield another.
    TicketConsumed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScene(id) => write!(f, "unknown {id}"),
            ServeError::ServiceStopped => write!(f, "render service stopped"),
            ServeError::TimedOut => write!(f, "timed out waiting for a response"),
            ServeError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ServeError::RenderFailed => write!(f, "render panicked; request abandoned"),
            ServeError::TicketConsumed => write!(f, "response already collected"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response handle.
pub struct Ticket {
    rx: Receiver<Result<RenderResponse, ServeError>>,
    consumed: Cell<bool>,
}

impl Ticket {
    fn new(rx: Receiver<Result<RenderResponse, ServeError>>) -> Self {
        Ticket {
            rx,
            consumed: Cell::new(false),
        }
    }

    /// Blocks until the service answers.
    pub fn wait(self) -> Result<RenderResponse, ServeError> {
        if self.consumed.get() {
            return Err(ServeError::TicketConsumed);
        }
        self.rx.recv().unwrap_or(Err(ServeError::ServiceStopped))
    }

    /// Waits at most `timeout` for the response, so a caller is never
    /// wedged behind a stuck job. On [`ServeError::TimedOut`] the ticket
    /// remains live — the render continues and a later wait can still
    /// collect it. Once a response (success or failure) has been
    /// collected the ticket is consumed: further waits return
    /// [`ServeError::TicketConsumed`] immediately instead of blocking out
    /// the timeout for an answer that can never come.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<RenderResponse, ServeError> {
        if self.consumed.get() {
            return Err(ServeError::TicketConsumed);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => {
                self.consumed.set(true);
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ServiceStopped),
        }
    }
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads per tile-parallel render.
    pub render_threads: usize,
    /// Tile side in pixels.
    pub tile_size: usize,
    /// Most requests drained into one dispatch batch.
    pub max_batch: usize,
    /// View-cache entries; `0` disables caching *and* same-batch
    /// coalescing, so every request pays a full render (the bench's
    /// baseline mode).
    pub cache_capacity: usize,
    /// Camera quantization: lattice cells per world unit (larger = finer =
    /// fewer cache collisions).
    pub quant_grid: f64,
    /// Slow-consumer bound: most undelivered deltas a subscriber's channel
    /// may hold before the dispatcher stops enqueueing and starts folding
    /// newer deltas into one pending squashed delta (see
    /// [`FrameDelta::squash`]). Retained memory per stalled subscriber is
    /// thereby bounded by `stream_window + 1` deltas, however many epochs
    /// it sleeps through. Clamped to at least 1.
    pub stream_window: usize,
    /// When `true`, an epoch republishing bit-identical pixels still sends
    /// an empty [`FrameDelta`] (zero tiles) announcing the epoch advance —
    /// a keepalive. Default `false`: empty republish deltas are
    /// suppressed (the bootstrap delta is always delivered regardless).
    pub stream_keepalive: bool,
    /// Dispatcher housekeeping period in milliseconds: how long the
    /// dispatcher sleeps on an idle queue before waking to sweep dropped
    /// stream handles and flush pending squashed deltas to subscribers
    /// that have drained below their window. Bounds how long an abandoned
    /// handle on a fully idle service can pin its retained frame.
    /// Clamped to `1..=60_000`.
    pub housekeep_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            render_threads: std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .min(8),
            tile_size: 32,
            max_batch: 64,
            cache_capacity: 256,
            quant_grid: 256.0,
            stream_window: 8,
            stream_keepalive: false,
            housekeep_ms: 200,
        }
    }
}

impl ServeConfig {
    /// Clamps degenerate knobs to the nearest working value, so a
    /// misconfigured service serves every request instead of panicking the
    /// shared dispatcher on the first one (`tile_size: 0` used to trip the
    /// tile decomposition's assert and kill the thread — every later
    /// ticket then resolved `ServiceStopped`). `cache_capacity: 0` stays
    /// meaningful ("no cache").
    fn sanitized(mut self) -> Self {
        self.render_threads = self.render_threads.max(1);
        self.tile_size = self.tile_size.max(1);
        self.max_batch = self.max_batch.max(1);
        if !self.quant_grid.is_finite() || self.quant_grid <= 0.0 {
            self.quant_grid = 256.0;
        }
        self.stream_window = self.stream_window.max(1);
        self.housekeep_ms = self.housekeep_ms.clamp(1, 60_000);
        self
    }
}

struct Job {
    request: RenderRequest,
    submitted: Instant,
    reply: Sender<Result<RenderResponse, ServeError>>,
}

/// Everything that reaches the dispatcher thread: render work, new
/// subscriptions, and store-publish announcements (sent by the watcher the
/// service registers on its `AnswerStore`, so epoch advances arrive on the
/// same queue as work — no polling anywhere).
enum Msg {
    Job(Job),
    Subscribe(NewSubscription),
    EpochAdvanced(SceneId),
}

/// A subscription in flight to the dispatcher.
struct NewSubscription {
    request: StreamRequest,
    tx: Sender<FrameDelta>,
    /// Cleared by [`StreamHandle`]'s `Drop`; the dispatcher sweeps dead
    /// subscriptions on every drain *and* on every housekeeping tick, so
    /// an abandoned handle never pins its retained last frame longer than
    /// [`ServeConfig::housekeep_ms`], even on a fully idle service.
    alive: Arc<AtomicBool>,
    /// Undelivered deltas sitting in the channel; incremented on send,
    /// decremented by the handle on receipt. At
    /// [`ServeConfig::stream_window`] the dispatcher coalesces instead of
    /// enqueueing.
    inflight: Arc<AtomicU64>,
}

/// Degenerate cameras can never produce an image (`Image` rejects
/// zero-area frames); refuse them up front instead of panicking a render.
fn validate_camera(camera: &Camera) -> Result<(), ServeError> {
    if camera.width == 0 || camera.height == 0 {
        return Err(ServeError::InvalidRequest("camera has zero pixel area"));
    }
    Ok(())
}

/// The concurrent answer-serving engine.
///
/// Shareable across client threads by reference (submission is lock-free
/// enqueue); dropping the service (or calling [`shutdown`][Self::shutdown])
/// drains in-flight requests and joins the dispatcher.
pub struct RenderService {
    tx: Option<Sender<Msg>>,
    dispatcher: Option<JoinHandle<()>>,
    metrics: Arc<ServiceMetrics>,
    store: Arc<AnswerStore>,
    watcher: Option<WatcherId>,
}

impl RenderService {
    /// Starts the dispatcher over `store`.
    ///
    /// Degenerate `config` values are clamped to working ones (see
    /// [`ServeConfig`] — in particular `tile_size: 0` no longer kills the
    /// dispatcher on the first request).
    pub fn start(store: Arc<AnswerStore>, config: ServeConfig) -> Self {
        let config = config.sanitized();
        let (tx, rx) = mpsc::channel::<Msg>();
        let metrics = Arc::new(ServiceMetrics::new());
        // Publishes push an event onto the dispatch queue, so streaming
        // subscribers learn of fresh epochs without anyone polling the
        // store. Unregistered at shutdown — otherwise the callback's
        // sender clone would keep the dispatch channel alive forever and
        // `stop` would never join.
        let watcher = {
            let watcher_tx = tx.clone();
            store.register_watcher(move |scene_id, _| {
                let _ = watcher_tx.send(Msg::EpochAdvanced(scene_id));
            })
        };
        let dispatcher = {
            let store = Arc::clone(&store);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("photon-serve-dispatch".into())
                .spawn(move || Dispatcher::new(store, config, metrics).run(rx))
                .expect("spawn dispatcher")
        };
        RenderService {
            tx: Some(tx),
            dispatcher: Some(dispatcher),
            metrics,
            store,
            watcher: Some(watcher),
        }
    }

    /// The store this service answers from.
    pub fn store(&self) -> &Arc<AnswerStore> {
        &self.store
    }

    /// Enqueues a request; the returned ticket resolves when served.
    /// Invalid requests (degenerate camera) resolve immediately with
    /// [`ServeError::InvalidRequest`] without reaching the dispatcher.
    pub fn submit(&self, request: RenderRequest) -> Ticket {
        let (reply, rx) = mpsc::channel();
        if let Err(e) = validate_camera(&request.camera) {
            let _ = reply.send(Err(e));
            return Ticket::new(rx);
        }
        let job = Job {
            request,
            submitted: Instant::now(),
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send error means the dispatcher is gone; the dropped reply
            // sender surfaces it as ServiceStopped at wait().
            let _ = tx.send(Msg::Job(job));
        }
        Ticket::new(rx)
    }

    /// Subscribes to a scene: the returned [`StreamHandle`] receives a
    /// [`FrameDelta`] for the current epoch immediately, then one more
    /// each time a publish advances the scene's epoch — only the tiles
    /// that changed since the last delta sent to *this* subscriber.
    /// Reassembling the deltas (see [`FrameDelta::apply`]) reproduces each
    /// epoch's full render bit-for-bit. Drop the handle to unsubscribe.
    pub fn subscribe(&self, request: StreamRequest) -> Result<StreamHandle, ServeError> {
        validate_camera(&request.camera)?;
        if self.store.get(request.scene_id).is_none() {
            return Err(ServeError::UnknownScene(request.scene_id));
        }
        let (tx, rx) = mpsc::channel();
        let alive = Arc::new(AtomicBool::new(true));
        let inflight = Arc::new(AtomicU64::new(0));
        let sender = self.tx.as_ref().ok_or(ServeError::ServiceStopped)?;
        sender
            .send(Msg::Subscribe(NewSubscription {
                request,
                tx,
                alive: Arc::clone(&alive),
                inflight: Arc::clone(&inflight),
            }))
            .map_err(|_| ServeError::ServiceStopped)?;
        Ok(StreamHandle::new(
            request,
            rx,
            alive,
            inflight,
            Some(self.store.obs()),
        ))
    }

    /// Submits and blocks for the response.
    pub fn render_blocking(&self, request: RenderRequest) -> Result<RenderResponse, ServeError> {
        self.submit(request).wait()
    }

    /// Submits a whole batch up front, then waits for every response in
    /// order — the natural shape for "render these N viewpoints" clients,
    /// and what lets the dispatcher batch and coalesce them.
    pub fn render_batch(
        &self,
        requests: impl IntoIterator<Item = RenderRequest>,
    ) -> Vec<Result<RenderResponse, ServeError>> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Current service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The shared metrics sink itself (not a snapshot) — what
    /// [`exporter`](Self::exporter) and tests that probe concurrency
    /// hang on to.
    pub fn metrics_handle(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Attaches a solver pool's scheduler (see
    /// `SolverPool::stats_source`) so [`metrics`](Self::metrics)
    /// snapshots carry the solve tier's queue depth, per-job rates, and
    /// per-tenant slice accounting beside the render-side latencies.
    pub fn attach_solver(&self, source: Arc<dyn SolverStatsSource>) {
        self.metrics.attach_solver(source);
    }

    /// Stops accepting work, serves what is queued, and joins the
    /// dispatcher.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Unregister the publish watcher first: it owns a sender clone,
        // and the dispatcher only exits when every sender is gone.
        if let Some(watcher) = self.watcher.take() {
            self.store.unregister_watcher(watcher);
        }
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RenderService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One drained burst of messages, split by kind: render jobs batch (and
/// cap the drain), subscriptions and epoch announcements ride along.
#[derive(Default)]
struct Inbox {
    jobs: Vec<Job>,
    advanced: BTreeSet<SceneId>,
    pending_subs: Vec<NewSubscription>,
}

impl Inbox {
    fn triage(&mut self, msg: Msg) {
        match msg {
            Msg::Job(job) => self.jobs.push(job),
            Msg::EpochAdvanced(scene_id) => {
                self.advanced.insert(scene_id);
            }
            Msg::Subscribe(sub) => self.pending_subs.push(sub),
        }
    }
}

/// One live subscription, dispatcher-side.
struct Subscriber {
    scene_id: SceneId,
    camera: Camera,
    /// Epoch of the last delta sent — fresher publishes trigger the next.
    last_epoch: u64,
    /// The frame that delta brought the subscriber to; `None` only before
    /// the initial delta, whose diff base is a black canvas (what a
    /// fresh client's [`FrameDelta::canvas`] starts from).
    last_frame: Option<Arc<Image>>,
    tx: Sender<FrameDelta>,
    /// Cleared when the client drops its handle; swept every drain and
    /// every housekeeping tick.
    alive: Arc<AtomicBool>,
    /// Undelivered deltas in the channel, shared with the handle.
    inflight: Arc<AtomicU64>,
    /// Deltas coalesced while the consumer was at its window; flushed the
    /// moment it drains below [`ServeConfig::stream_window`]. At most one
    /// squashed delta, whatever the backlog — the slow-consumer bound.
    pending: Option<FrameDelta>,
}

/// The pixels of one frame delta, pre-extraction: what `diff_tiles`
/// returns and a [`FrameDelta`] carries.
type TileDelta = Vec<(Tile, Vec<Rgb>)>;

/// The dispatcher thread's state: the view cache, the per-scene epoch
/// tracking that drives purges, and the streaming subscribers.
struct Dispatcher {
    store: Arc<AnswerStore>,
    config: ServeConfig,
    metrics: Arc<ServiceMetrics>,
    /// The store's shared observability hub: stage timings (cache probe,
    /// render, diff, reply) and serve/stream lifecycle events.
    obs: Arc<ObsHub>,
    cache: Option<LruCache<ViewKey, Arc<Image>>>,
    /// Freshest epoch seen per scene — when a publish advances it, the
    /// scene's older-epoch cache keys are orphaned (they can never match a
    /// future request) and are purged eagerly instead of squatting in the
    /// LRU until capacity pressure thrashes live views out. Bounded: only
    /// scenes with live cache keys are tracked (see [`note_epoch`]), so a
    /// long-lived service over an ever-growing store stays flat.
    ///
    /// [`note_epoch`]: Dispatcher::note_epoch
    seen_epoch: HashMap<SceneId, u64>,
    subscribers: HashMap<u64, Subscriber>,
    next_subscriber: u64,
}

impl Dispatcher {
    fn new(store: Arc<AnswerStore>, config: ServeConfig, metrics: Arc<ServiceMetrics>) -> Self {
        let cache = (config.cache_capacity > 0).then(|| LruCache::new(config.cache_capacity));
        let obs = store.obs();
        Dispatcher {
            store,
            config,
            metrics,
            obs,
            cache,
            seen_epoch: HashMap::new(),
            subscribers: HashMap::new(),
            next_subscriber: 0,
        }
    }

    fn run(&mut self, rx: Receiver<Msg>) {
        let housekeep = Duration::from_millis(self.config.housekeep_ms);
        loop {
            // Wait for the first message — but only up to the housekeeping
            // period, so a fully idle service still sweeps dropped handles
            // and flushes pending squashed deltas within a bounded
            // interval (an abandoned handle used to pin its retained frame
            // until the *next* unrelated activity woke this loop). On a
            // message, opportunistically drain the queue: render jobs
            // batch (up to max_batch), control and epoch messages ride
            // along for free.
            match rx.recv_timeout(housekeep) {
                Ok(first) => {
                    let mut inbox = Inbox::default();
                    inbox.triage(first);
                    while inbox.jobs.len() < self.config.max_batch {
                        match rx.try_recv() {
                            Ok(msg) => inbox.triage(msg),
                            Err(_) => break,
                        }
                    }
                    let Inbox {
                        jobs,
                        advanced,
                        pending_subs,
                    } = inbox;

                    if !jobs.is_empty() {
                        self.dispatch_jobs(jobs);
                    }
                    for sub in pending_subs {
                        self.add_subscriber(sub);
                    }
                    for scene_id in advanced {
                        self.push_deltas(scene_id);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
            self.housekeep();
        }
    }

    /// The per-iteration sweep, run after every drain *and* on idle
    /// ticks: flush pending squashed deltas to subscribers that drained
    /// below their window, drop subscriptions whose handles are gone, and
    /// refresh the gauges.
    fn housekeep(&mut self) {
        self.flush_pending();
        self.subscribers
            .retain(|_, s| s.alive.load(Ordering::Acquire));
        self.metrics.record_epoch_map(self.seen_epoch.len() as u64);
        self.metrics
            .record_subscribers(self.subscribers.len() as u64);
    }

    /// Delivers each subscriber's pending squashed delta once its channel
    /// has drained below the window — the second half of the
    /// slow-consumer policy (the first half, folding, happens in
    /// [`send_delta`][Self::send_delta]).
    fn flush_pending(&mut self) {
        let window = self.config.stream_window as u64;
        for subscriber in self.subscribers.values_mut() {
            if subscriber.pending.is_none()
                || !subscriber.alive.load(Ordering::Acquire)
                || subscriber.inflight.load(Ordering::Acquire) >= window
            {
                continue;
            }
            let delta = subscriber.pending.take().expect("checked above");
            if !deliver(subscriber, delta, &self.metrics, &self.obs) {
                subscriber.alive.store(false, Ordering::Release);
            }
        }
    }

    /// Serves one drained batch of render jobs, grouped so each stored
    /// answer resolves once. Every scene's dispatch runs under a panic
    /// guard: a job that panics the render (a poisoned answer, an
    /// adversarial camera) answers its whole group with
    /// [`ServeError::RenderFailed`] and the dispatcher lives on — one bad
    /// job can no longer turn every future ticket into `ServiceStopped`.
    fn dispatch_jobs(&mut self, jobs: Vec<Job>) {
        let batch_start = Instant::now();
        let drained = jobs.len() as u64;
        let mut by_scene: BTreeMap<SceneId, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            by_scene.entry(job.request.scene_id).or_default().push(job);
        }
        for (scene_id, group) in by_scene {
            let Some(entry) = self.store.get(scene_id) else {
                for job in group {
                    let _ = job.reply.send(Err(ServeError::UnknownScene(scene_id)));
                }
                continue;
            };
            self.note_epoch(scene_id, entry.epoch);
            let replies: Vec<Sender<Result<RenderResponse, ServeError>>> =
                group.iter().map(|job| job.reply.clone()).collect();
            let guarded = catch_unwind(AssertUnwindSafe(|| {
                self.serve_scene_group(&entry, scene_id, group)
            }));
            if guarded.is_err() {
                self.obs.emit(
                    ObsKind::DispatchPanic,
                    ObsCtx {
                        scene: Some(scene_id.0),
                        payload: replies.len() as u64,
                        ..Default::default()
                    },
                );
                // The panicking render consumed the group's jobs; the
                // cloned senders still reach every waiter. Those already
                // answered ignore the second message (tickets read once).
                for reply in replies {
                    let _ = reply.send(Err(ServeError::RenderFailed));
                }
            }
        }
        if let Some(cache) = self.cache.as_ref() {
            self.metrics.record_cache(cache.len() as u64, 0);
        }
        self.metrics
            .record_batch(drained, batch_start.elapsed().as_secs_f64());
    }

    /// Serves one scene's batch group: coalesce identical quantized views,
    /// render misses, answer every waiter.
    fn serve_scene_group(&mut self, entry: &Arc<StoredAnswer>, scene_id: SceneId, group: Vec<Job>) {
        let epoch = entry.epoch;
        if self.cache.is_none() {
            for job in group {
                let (image, _) = self.resolve_view(entry, scene_id, &job.request.camera);
                respond(
                    job,
                    image,
                    RequestOutcome::Rendered,
                    epoch,
                    &self.metrics,
                    &self.obs,
                );
            }
            return;
        }
        // Coalesce identical quantized views within the batch, preserving
        // first-seen order. Keyed by the entry's epoch: a progressive
        // solve publishing a refined answer re-renders instead of serving
        // the previous epoch's image.
        let mut keyed: Vec<(ViewKey, Vec<Job>)> = Vec::new();
        for job in group {
            let key =
                ViewKey::quantize(scene_id, epoch, &job.request.camera, self.config.quant_grid);
            match keyed.iter_mut().find(|(k, _)| *k == key) {
                Some((_, bucket)) => bucket.push(job),
                None => keyed.push((key, vec![job])),
            }
        }
        for (_, bucket) in keyed {
            let mut bucket = bucket.into_iter();
            let leader = bucket.next().expect("bucket never empty");
            let (image, outcome) = self.resolve_view(entry, scene_id, &leader.request.camera);
            // Followers shared the leader's render in this batch, or its
            // cache hit from an earlier one.
            let follower_outcome = match outcome {
                RequestOutcome::Rendered => RequestOutcome::Coalesced,
                _ => RequestOutcome::CacheHit,
            };
            respond(
                leader,
                Arc::clone(&image),
                outcome,
                epoch,
                &self.metrics,
                &self.obs,
            );
            for job in bucket {
                respond(
                    job,
                    Arc::clone(&image),
                    follower_outcome,
                    epoch,
                    &self.metrics,
                    &self.obs,
                );
            }
        }
    }

    /// Resolves one view of `entry` through the cache: a hit clones the
    /// `Arc`, a miss renders tile-parallel and caches the image. Shared by
    /// the request path and the streaming path, so subscribers coalesce
    /// with interactive traffic (two subscribers on one viewpoint render
    /// once per epoch).
    fn resolve_view(
        &mut self,
        entry: &Arc<StoredAnswer>,
        scene_id: SceneId,
        camera: &Camera,
    ) -> (Arc<Image>, RequestOutcome) {
        let key = self
            .cache
            .is_some()
            .then(|| ViewKey::quantize(scene_id, entry.epoch, camera, self.config.quant_grid));
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key.as_ref()) {
            let probe_start = Instant::now();
            let hit = cache.get(key).cloned();
            self.obs
                .stage(Stage::CacheProbe, probe_start.elapsed().as_secs_f64());
            if let Some(image) = hit {
                return (image, RequestOutcome::CacheHit);
            }
        }
        let image = self.obs.time(Stage::Render, || {
            Arc::new(render_parallel(
                &entry.scene,
                &entry.answer,
                camera,
                entry.exposure,
                self.config.render_threads,
                self.config.tile_size,
            ))
        });
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key) {
            cache.insert(key, Arc::clone(&image));
        }
        (image, RequestOutcome::Rendered)
    }

    /// Observes `scene_id` at `epoch`: a fresher epoch purges the scene's
    /// now-orphaned older cache keys, then drops epoch-tracking entries
    /// for scenes with no cached views left — the map's size is thereby
    /// bounded by the cache's contents instead of growing one entry per
    /// scene forever (the `seen_epoch` leak).
    fn note_epoch(&mut self, scene_id: SceneId, epoch: u64) {
        let Some(cache) = self.cache.as_mut() else {
            // No cache, nothing to purge — and no reason to track.
            return;
        };
        let last = self.seen_epoch.entry(scene_id).or_insert(epoch);
        if epoch > *last {
            *last = epoch;
            let purged = cache.retain(|key| key.scene() != scene_id || key.epoch() >= epoch);
            self.metrics.record_cache(cache.len() as u64, purged as u64);
            if purged > 0 {
                self.obs.emit(
                    ObsKind::CachePurged,
                    ObsCtx {
                        scene: Some(scene_id.0),
                        payload: purged as u64,
                        ..Default::default()
                    },
                );
            }
        }
        // Hard bound, independent of epoch advances: a tracking entry only
        // exists to trigger the purge above, which is a no-op for scenes
        // with no cached views — so whenever the map outgrows the cache
        // (scenes inserted and never republished, evicted views), drop the
        // dead entries. Invariant: len ≤ cache keys + 1 after every call.
        if self.seen_epoch.len() > cache.len() {
            let live: HashSet<SceneId> = cache.keys().map(|key| key.scene()).collect();
            self.seen_epoch
                .retain(|id, _| *id == scene_id || live.contains(id));
        }
    }

    /// Registers a subscription and pushes its bootstrap delta — the
    /// current epoch's frame diffed against a black canvas, so background
    /// tiles never ship. A panicking render drops the subscription (the
    /// handle sees `ServiceStopped`) instead of the dispatcher.
    fn add_subscriber(&mut self, sub: NewSubscription) {
        let NewSubscription {
            request,
            tx,
            alive,
            inflight,
        } = sub;
        let Some(entry) = self.store.get(request.scene_id) else {
            // Subscribe validated existence; the store never forgets ids.
            return;
        };
        let id = self.next_subscriber;
        self.next_subscriber += 1;
        let mut subscriber = Subscriber {
            scene_id: request.scene_id,
            camera: request.camera,
            last_epoch: entry.epoch,
            last_frame: None,
            tx,
            alive,
            inflight,
            pending: None,
        };
        let rendered = catch_unwind(AssertUnwindSafe(|| {
            self.resolve_view(&entry, request.scene_id, &request.camera)
        }));
        let Ok((image, _)) = rendered else { return };
        let tiles = self.diff_frames(None, &image);
        if self.send_delta(&mut subscriber, entry.epoch, image, tiles) {
            self.subscribers.insert(id, subscriber);
            self.obs.emit(
                ObsKind::SubscriberConnected,
                ObsCtx {
                    scene: Some(request.scene_id.0),
                    payload: self.subscribers.len() as u64,
                    ..Default::default()
                },
            );
        }
        self.note_epoch(request.scene_id, entry.epoch);
    }

    /// Pushes a delta to every subscriber of `scene_id` that has not yet
    /// seen its current epoch. Renders go through the view cache, so N
    /// subscribers sharing a viewpoint cost one render — and their diffs
    /// coalesce the same way (identical `(prev, next)` frame pairs are
    /// diffed once per pass). Dead handles (dropped receivers) are
    /// unsubscribed here; a panicking render drops the affected
    /// subscription and spares the rest.
    fn push_deltas(&mut self, scene_id: SceneId) {
        let Some(entry) = self.store.get(scene_id) else {
            return;
        };
        let due: Vec<u64> = self
            .subscribers
            .iter()
            .filter(|(_, s)| s.scene_id == scene_id && s.last_epoch < entry.epoch)
            .map(|(&id, _)| id)
            .collect();
        // Diff memo for this pass, keyed by the (prev, next) frame
        // identities — co-located subscribers share both Arcs.
        let mut diffed: Vec<(Option<*const Image>, *const Image, TileDelta)> = Vec::new();
        for id in due {
            let camera = self.subscribers[&id].camera;
            let rendered = catch_unwind(AssertUnwindSafe(|| {
                self.resolve_view(&entry, scene_id, &camera)
            }));
            let Ok((image, _)) = rendered else {
                self.subscribers.remove(&id);
                continue;
            };
            let mut subscriber = self.subscribers.remove(&id).expect("still registered");
            let prev_key = subscriber.last_frame.as_ref().map(Arc::as_ptr);
            let next_key = Arc::as_ptr(&image);
            let tiles = match diffed
                .iter()
                .find(|(p, n, _)| *p == prev_key && *n == next_key)
            {
                Some((_, _, tiles)) => tiles.clone(),
                None => {
                    let tiles = self.diff_frames(subscriber.last_frame.as_deref(), &image);
                    diffed.push((prev_key, next_key, tiles.clone()));
                    tiles
                }
            };
            if self.send_delta(&mut subscriber, entry.epoch, image, tiles) {
                self.subscribers.insert(id, subscriber);
            }
        }
        self.note_epoch(scene_id, entry.epoch);
    }

    /// Tile-diffs `next` against `prev` — or against the black canvas a
    /// brand-new subscriber implicitly holds.
    fn diff_frames(&self, prev: Option<&Image>, next: &Image) -> TileDelta {
        self.obs.time(Stage::Diff, || match prev {
            Some(prev) => diff_tiles(prev, next, self.config.tile_size),
            None => diff_tiles(
                &Image::new(next.width(), next.height()),
                next,
                self.config.tile_size,
            ),
        })
    }

    /// Moves the subscriber's cursor to `next` and routes the diff
    /// according to the streaming policy:
    ///
    /// - an empty diff on a republish is suppressed (unless
    ///   [`ServeConfig::stream_keepalive`] asks for it, or a pending
    ///   squashed delta is waiting to carry the epoch forward anyway);
    ///   the bootstrap delta always goes out — the client needs the
    ///   frame's dimensions and epoch;
    /// - a consumer at its [`ServeConfig::stream_window`] gets the delta
    ///   folded into its single pending squashed delta instead of another
    ///   channel entry, so a stalled subscriber's retained memory stays
    ///   bounded;
    /// - otherwise the delta (merged with any pending one) is delivered.
    ///
    /// Returns false when the handle is gone and the subscription should
    /// be dropped.
    fn send_delta(
        &self,
        subscriber: &mut Subscriber,
        epoch: u64,
        next: Arc<Image>,
        tiles: TileDelta,
    ) -> bool {
        let bootstrap = subscriber.last_frame.is_none();
        let delta = FrameDelta {
            epoch,
            width: next.width(),
            height: next.height(),
            tiles,
        };
        subscriber.last_epoch = epoch;
        subscriber.last_frame = Some(next);
        if delta.is_empty()
            && !bootstrap
            && !self.config.stream_keepalive
            && subscriber.pending.is_none()
        {
            // A republish with bit-identical pixels: nothing to ship, and
            // no epoch-bearing pending delta to refresh. Silently advance.
            return true;
        }
        if !bootstrap
            && subscriber.inflight.load(Ordering::Acquire) >= self.config.stream_window as u64
        {
            // Consumer at its window: fold rather than enqueue. Squash
            // keeps the newest pixels per rectangle, so reassembly on the
            // eventual flush is still bit-identical to the final epoch.
            let lag_transition = subscriber.pending.is_none();
            subscriber.pending = Some(match subscriber.pending.take() {
                Some(pending) => FrameDelta::squash(&[pending, delta]),
                None => delta,
            });
            self.metrics.record_squash(lag_transition);
            if lag_transition {
                self.obs.emit(
                    ObsKind::SubscriberLagged,
                    ObsCtx {
                        scene: Some(subscriber.scene_id.0),
                        payload: subscriber.inflight.load(Ordering::Acquire),
                        ..Default::default()
                    },
                );
            }
            return true;
        }
        let to_send = match subscriber.pending.take() {
            Some(pending) => FrameDelta::squash(&[pending, delta]),
            None => delta,
        };
        deliver(subscriber, to_send, &self.metrics, &self.obs)
    }
}

/// Actually enqueues `delta` on the subscriber's channel, bumping the
/// inflight count and the stream counters. A free function (not a
/// `Dispatcher` method) so [`flush_pending`][Dispatcher::flush_pending]
/// can call it while iterating `self.subscribers` mutably.
fn deliver(
    subscriber: &mut Subscriber,
    delta: FrameDelta,
    metrics: &ServiceMetrics,
    obs: &ObsHub,
) -> bool {
    let (ntiles, tile_bytes, full_bytes) = (
        delta.tiles.len() as u64,
        delta.tile_bytes() as u64,
        delta.full_frame_bytes() as u64,
    );
    // Count before the send, like `respond` does for requests: the moment
    // the delta hits the channel the receiver can observe it (and read
    // metrics, or decrement `inflight`), so recording afterwards races
    // every exact-count reader. The cost is one phantom count when the
    // send loses to a concurrently dropped handle — and that subscriber
    // is removed on return anyway.
    subscriber.inflight.fetch_add(1, Ordering::AcqRel);
    metrics.record_delta(ntiles, tile_bytes, full_bytes);
    obs.emit(
        ObsKind::DeltaPushed,
        ObsCtx {
            scene: Some(subscriber.scene_id.0),
            payload: tile_bytes,
            ..Default::default()
        },
    );
    subscriber.tx.send(delta).is_ok()
}

fn respond(
    job: Job,
    image: Arc<Image>,
    outcome: RequestOutcome,
    epoch: u64,
    metrics: &ServiceMetrics,
    obs: &ObsHub,
) {
    let reply_start = Instant::now();
    let scene = job.request.scene_id.0;
    let latency = job.submitted.elapsed();
    metrics.record_request(latency, outcome);
    // A dead waiter (dropped ticket) is fine; the render still warmed the
    // cache.
    let _ = job.reply.send(Ok(RenderResponse {
        image,
        outcome,
        epoch,
        latency,
    }));
    obs.emit(
        ObsKind::RequestServed,
        ObsCtx {
            scene: Some(scene),
            payload: latency.as_micros() as u64,
            ..Default::default()
        },
    );
    obs.stage(Stage::Reply, reply_start.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_math::Vec3;
    use photon_scenes::TestScene;

    fn store_with_cornell() -> (Arc<AnswerStore>, SceneId) {
        let mut sim = Simulator::new(
            TestScene::CornellBox.build(),
            SimConfig {
                seed: 9,
                ..Default::default()
            },
        );
        sim.run_photons(2_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene().clone();
        let store = Arc::new(AnswerStore::new());
        let id = store.insert("cornell", scene, answer);
        (store, id)
    }

    fn cornell_cam(phase: f64) -> Camera {
        Camera {
            eye: Vec3::new(2.78 + phase.cos(), 2.73, -7.5 + phase.sin()),
            target: Vec3::new(2.78, 2.73, 2.8),
            up: Vec3::Y,
            vfov_deg: 40.0,
            width: 24,
            height: 18,
        }
    }

    #[test]
    fn repeat_views_hit_the_cache() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.0),
        };
        let a = service.render_blocking(req).unwrap();
        assert_eq!(a.outcome, RequestOutcome::Rendered);
        let b = service.render_blocking(req).unwrap();
        assert!(
            b.from_cache(),
            "second identical view should be a cache hit"
        );
        assert_eq!(a.image.pixels(), b.image.pixels());
        let m = service.metrics();
        assert_eq!((m.completed, m.rendered, m.cache_hits), (2, 1, 1));
    }

    #[test]
    fn cache_off_renders_every_request() {
        let (store, id) = store_with_cornell();
        let config = ServeConfig {
            cache_capacity: 0,
            ..Default::default()
        };
        let service = RenderService::start(store, config);
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.0),
        };
        let responses = service.render_batch([req, req, req]);
        for r in &responses {
            assert_eq!(r.as_ref().unwrap().outcome, RequestOutcome::Rendered);
        }
        let m = service.metrics();
        assert_eq!(
            (m.completed, m.rendered, m.cache_hits, m.coalesced),
            (3, 3, 0, 0)
        );
    }

    #[test]
    fn wait_timeout_returns_instead_of_blocking_forever() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let ticket = service.submit(RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.5),
        });
        // Either the render already finished or the wait gives up quickly;
        // both return control. A timed-out ticket can still collect later.
        match ticket.wait_timeout(Duration::from_millis(1)) {
            Ok(r) => assert_eq!(r.image.width(), 24),
            Err(ServeError::TimedOut) => {
                let r = ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("served on the retry");
                assert_eq!(r.image.width(), 24);
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn unknown_scene_is_an_error_not_a_hang() {
        let (store, _) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: SceneId(99),
            camera: cornell_cam(0.0),
        };
        let err = service.render_blocking(req).unwrap_err();
        assert_eq!(err, ServeError::UnknownScene(SceneId(99)));
    }

    #[test]
    fn batched_duplicates_coalesce_into_one_render() {
        let (store, id) = store_with_cornell();
        // Single-slot batching window large enough to see all four at once.
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(1.0),
        };
        let responses = service.render_batch(vec![req; 4]);
        let images: Vec<_> = responses.into_iter().map(|r| r.unwrap()).collect();
        for r in &images[1..] {
            assert_eq!(r.image.pixels(), images[0].image.pixels());
        }
        let m = service.metrics();
        // However the queue drained, an identical view never renders twice:
        // followers are coalesced (same batch) or cache hits (later batch).
        assert_eq!(m.completed, 4);
        assert_eq!(m.rendered, 1, "duplicates re-rendered: {m:?}");
        assert_eq!(m.cache_hits + m.coalesced, 3);
    }

    #[test]
    fn shutdown_answers_queued_work_first() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                service.submit(RenderRequest {
                    scene_id: id,
                    camera: cornell_cam(i as f64),
                })
            })
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued request dropped at shutdown");
        }
    }
}
