//! The render service: a submission queue feeding a batching dispatcher
//! over the answer store.
//!
//! Request lifecycle:
//!
//! 1. [`RenderService::submit`] enqueues a [`RenderRequest`] and hands back
//!    a [`Ticket`].
//! 2. The dispatcher thread drains the queue in batches (up to
//!    [`ServeConfig::max_batch`] at a time), groups requests by scene so
//!    each stored answer is resolved once per batch, and — when caching is
//!    on — coalesces requests whose quantized [`ViewKey`]s collide, so one
//!    tile-parallel render answers all of them.
//! 3. Misses render across the worker pool
//!    ([`render_parallel`]), land in the
//!    LRU view cache, and every waiter gets an `Arc` of the same image.
//!
//! One dispatcher owns the cache (no lock contention on the hot map); the
//! heavy lifting inside a render is already parallel at tile granularity,
//! so the service saturates cores without concurrent dispatchers.

use crate::cache::{LruCache, ViewKey};
use crate::metrics::{MetricsSnapshot, RequestOutcome, ServiceMetrics, SolverStatsSource};
use crate::render::render_parallel;
use crate::store::{AnswerStore, SceneId};
use photon_core::{Camera, Image};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One view query: which stored answer, seen from where.
#[derive(Clone, Copy, Debug)]
pub struct RenderRequest {
    /// The stored solution to query.
    pub scene_id: SceneId,
    /// The viewpoint.
    pub camera: Camera,
}

/// A served view.
#[derive(Clone, Debug)]
pub struct RenderResponse {
    /// The rendered (or cached) image; shared, never copied per waiter.
    pub image: Arc<Image>,
    /// How the request was satisfied.
    pub outcome: RequestOutcome,
    /// Publication epoch of the answer the image came from — lets clients
    /// of a progressive solve see which refinement they were served.
    pub epoch: u64,
    /// Submission-to-response time.
    pub latency: Duration,
}

impl RenderResponse {
    /// True when the image came from the view cache.
    pub fn from_cache(&self) -> bool {
        self.outcome == RequestOutcome::CacheHit
    }
}

/// Ways a request can fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a scene id the store has never seen.
    UnknownScene(SceneId),
    /// The service shut down before answering.
    ServiceStopped,
    /// [`Ticket::wait_timeout`] gave up before the service answered; the
    /// ticket stays valid, so the caller may wait again.
    TimedOut,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScene(id) => write!(f, "unknown {id}"),
            ServeError::ServiceStopped => write!(f, "render service stopped"),
            ServeError::TimedOut => write!(f, "timed out waiting for a response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response handle.
pub struct Ticket {
    rx: Receiver<Result<RenderResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the service answers.
    pub fn wait(self) -> Result<RenderResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServiceStopped))
    }

    /// Waits at most `timeout` for the response, so a caller is never
    /// wedged behind a stuck job. On [`ServeError::TimedOut`] the ticket
    /// remains live — the render continues and a later wait can still
    /// collect it.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<RenderResponse, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ServiceStopped),
        }
    }
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads per tile-parallel render.
    pub render_threads: usize,
    /// Tile side in pixels.
    pub tile_size: usize,
    /// Most requests drained into one dispatch batch.
    pub max_batch: usize,
    /// View-cache entries; `0` disables caching *and* same-batch
    /// coalescing, so every request pays a full render (the bench's
    /// baseline mode).
    pub cache_capacity: usize,
    /// Camera quantization: lattice cells per world unit (larger = finer =
    /// fewer cache collisions).
    pub quant_grid: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            render_threads: std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .min(8),
            tile_size: 32,
            max_batch: 64,
            cache_capacity: 256,
            quant_grid: 256.0,
        }
    }
}

struct Job {
    request: RenderRequest,
    submitted: Instant,
    reply: Sender<Result<RenderResponse, ServeError>>,
}

/// The concurrent answer-serving engine.
///
/// Shareable across client threads by reference (submission is lock-free
/// enqueue); dropping the service (or calling [`shutdown`][Self::shutdown])
/// drains in-flight requests and joins the dispatcher.
pub struct RenderService {
    tx: Option<Sender<Job>>,
    dispatcher: Option<JoinHandle<()>>,
    metrics: Arc<ServiceMetrics>,
    store: Arc<AnswerStore>,
}

impl RenderService {
    /// Starts the dispatcher over `store`.
    pub fn start(store: Arc<AnswerStore>, config: ServeConfig) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let metrics = Arc::new(ServiceMetrics::new());
        let dispatcher = {
            let store = Arc::clone(&store);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("photon-serve-dispatch".into())
                .spawn(move || dispatch_loop(rx, store, config, metrics))
                .expect("spawn dispatcher")
        };
        RenderService {
            tx: Some(tx),
            dispatcher: Some(dispatcher),
            metrics,
            store,
        }
    }

    /// The store this service answers from.
    pub fn store(&self) -> &Arc<AnswerStore> {
        &self.store
    }

    /// Enqueues a request; the returned ticket resolves when served.
    pub fn submit(&self, request: RenderRequest) -> Ticket {
        let (reply, rx) = mpsc::channel();
        let job = Job {
            request,
            submitted: Instant::now(),
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send error means the dispatcher is gone; the dropped reply
            // sender surfaces it as ServiceStopped at wait().
            let _ = tx.send(job);
        }
        Ticket { rx }
    }

    /// Submits and blocks for the response.
    pub fn render_blocking(&self, request: RenderRequest) -> Result<RenderResponse, ServeError> {
        self.submit(request).wait()
    }

    /// Submits a whole batch up front, then waits for every response in
    /// order — the natural shape for "render these N viewpoints" clients,
    /// and what lets the dispatcher batch and coalesce them.
    pub fn render_batch(
        &self,
        requests: impl IntoIterator<Item = RenderRequest>,
    ) -> Vec<Result<RenderResponse, ServeError>> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Current service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Attaches a solver pool's scheduler (see
    /// `SolverPool::stats_source`) so [`metrics`](Self::metrics)
    /// snapshots carry the solve tier's queue depth, per-job rates, and
    /// per-tenant slice accounting beside the render-side latencies.
    pub fn attach_solver(&self, source: Arc<dyn SolverStatsSource>) {
        self.metrics.attach_solver(source);
    }

    /// Stops accepting work, serves what is queued, and joins the
    /// dispatcher.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RenderService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn dispatch_loop(
    rx: Receiver<Job>,
    store: Arc<AnswerStore>,
    config: ServeConfig,
    metrics: Arc<ServiceMetrics>,
) {
    let mut cache: Option<LruCache<ViewKey, Arc<Image>>> =
        (config.cache_capacity > 0).then(|| LruCache::new(config.cache_capacity));
    // Freshest epoch seen per scene — when a publish advances it, the
    // scene's older-epoch cache keys are orphaned (they can never match a
    // future request) and are purged eagerly instead of squatting in the
    // LRU until capacity pressure thrashes live views out.
    let mut seen_epoch: HashMap<SceneId, u64> = HashMap::new();
    loop {
        // Block for the first job, then opportunistically drain the queue.
        let Ok(first) = rx.recv() else { return };
        let mut jobs = vec![first];
        while jobs.len() < config.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let batch_start = Instant::now();
        let drained = jobs.len() as u64;

        // One store lookup per scene per batch.
        let mut by_scene: BTreeMap<SceneId, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            by_scene.entry(job.request.scene_id).or_default().push(job);
        }
        for (scene_id, group) in by_scene {
            let Some(entry) = store.get(scene_id) else {
                for job in group {
                    let _ = job.reply.send(Err(ServeError::UnknownScene(scene_id)));
                }
                continue;
            };
            let epoch = entry.epoch;
            let last = seen_epoch.entry(scene_id).or_insert(epoch);
            if epoch > *last {
                *last = epoch;
                if let Some(cache) = cache.as_mut() {
                    let purged =
                        cache.retain(|key| key.scene() != scene_id || key.epoch() >= epoch);
                    metrics.record_cache(cache.len() as u64, purged as u64);
                }
            }
            let render_one = |camera: &Camera| {
                Arc::new(render_parallel(
                    &entry.scene,
                    &entry.answer,
                    camera,
                    entry.exposure,
                    config.render_threads,
                    config.tile_size,
                ))
            };
            match cache.as_mut() {
                None => {
                    for job in group {
                        let image = render_one(&job.request.camera);
                        respond(job, image, RequestOutcome::Rendered, epoch, &metrics);
                    }
                }
                Some(cache) => {
                    // Coalesce identical quantized views within the batch,
                    // preserving first-seen order.
                    let mut keyed: Vec<(ViewKey, Vec<Job>)> = Vec::new();
                    for job in group {
                        // Keyed by the entry's epoch: a progressive solve
                        // publishing a refined answer re-renders instead of
                        // serving the previous epoch's image.
                        let key = ViewKey::quantize(
                            scene_id,
                            entry.epoch,
                            &job.request.camera,
                            config.quant_grid,
                        );
                        match keyed.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, bucket)) => bucket.push(job),
                            None => keyed.push((key, vec![job])),
                        }
                    }
                    for (key, bucket) in keyed {
                        if let Some(image) = cache.get(&key) {
                            let image = Arc::clone(image);
                            for job in bucket {
                                respond(
                                    job,
                                    Arc::clone(&image),
                                    RequestOutcome::CacheHit,
                                    epoch,
                                    &metrics,
                                );
                            }
                            continue;
                        }
                        let mut bucket = bucket.into_iter();
                        let leader = bucket.next().expect("bucket never empty");
                        let image = render_one(&leader.request.camera);
                        cache.insert(key, Arc::clone(&image));
                        respond(
                            leader,
                            Arc::clone(&image),
                            RequestOutcome::Rendered,
                            epoch,
                            &metrics,
                        );
                        for job in bucket {
                            respond(
                                job,
                                Arc::clone(&image),
                                RequestOutcome::Coalesced,
                                epoch,
                                &metrics,
                            );
                        }
                    }
                }
            }
        }
        if let Some(cache) = cache.as_ref() {
            metrics.record_cache(cache.len() as u64, 0);
        }
        metrics.record_batch(drained, batch_start.elapsed().as_secs_f64());
    }
}

fn respond(
    job: Job,
    image: Arc<Image>,
    outcome: RequestOutcome,
    epoch: u64,
    metrics: &ServiceMetrics,
) {
    let latency = job.submitted.elapsed();
    metrics.record_request(latency, outcome);
    // A dead waiter (dropped ticket) is fine; the render still warmed the
    // cache.
    let _ = job.reply.send(Ok(RenderResponse {
        image,
        outcome,
        epoch,
        latency,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_math::Vec3;
    use photon_scenes::TestScene;

    fn store_with_cornell() -> (Arc<AnswerStore>, SceneId) {
        let mut sim = Simulator::new(
            TestScene::CornellBox.build(),
            SimConfig {
                seed: 9,
                ..Default::default()
            },
        );
        sim.run_photons(2_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene().clone();
        let store = Arc::new(AnswerStore::new());
        let id = store.insert("cornell", scene, answer);
        (store, id)
    }

    fn cornell_cam(phase: f64) -> Camera {
        Camera {
            eye: Vec3::new(2.78 + phase.cos(), 2.73, -7.5 + phase.sin()),
            target: Vec3::new(2.78, 2.73, 2.8),
            up: Vec3::Y,
            vfov_deg: 40.0,
            width: 24,
            height: 18,
        }
    }

    #[test]
    fn repeat_views_hit_the_cache() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.0),
        };
        let a = service.render_blocking(req).unwrap();
        assert_eq!(a.outcome, RequestOutcome::Rendered);
        let b = service.render_blocking(req).unwrap();
        assert!(
            b.from_cache(),
            "second identical view should be a cache hit"
        );
        assert_eq!(a.image.pixels(), b.image.pixels());
        let m = service.metrics();
        assert_eq!((m.completed, m.rendered, m.cache_hits), (2, 1, 1));
    }

    #[test]
    fn cache_off_renders_every_request() {
        let (store, id) = store_with_cornell();
        let config = ServeConfig {
            cache_capacity: 0,
            ..Default::default()
        };
        let service = RenderService::start(store, config);
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.0),
        };
        let responses = service.render_batch([req, req, req]);
        for r in &responses {
            assert_eq!(r.as_ref().unwrap().outcome, RequestOutcome::Rendered);
        }
        let m = service.metrics();
        assert_eq!(
            (m.completed, m.rendered, m.cache_hits, m.coalesced),
            (3, 3, 0, 0)
        );
    }

    #[test]
    fn wait_timeout_returns_instead_of_blocking_forever() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let ticket = service.submit(RenderRequest {
            scene_id: id,
            camera: cornell_cam(0.5),
        });
        // Either the render already finished or the wait gives up quickly;
        // both return control. A timed-out ticket can still collect later.
        match ticket.wait_timeout(Duration::from_millis(1)) {
            Ok(r) => assert_eq!(r.image.width(), 24),
            Err(ServeError::TimedOut) => {
                let r = ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("served on the retry");
                assert_eq!(r.image.width(), 24);
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn unknown_scene_is_an_error_not_a_hang() {
        let (store, _) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: SceneId(99),
            camera: cornell_cam(0.0),
        };
        let err = service.render_blocking(req).unwrap_err();
        assert_eq!(err, ServeError::UnknownScene(SceneId(99)));
    }

    #[test]
    fn batched_duplicates_coalesce_into_one_render() {
        let (store, id) = store_with_cornell();
        // Single-slot batching window large enough to see all four at once.
        let service = RenderService::start(store, ServeConfig::default());
        let req = RenderRequest {
            scene_id: id,
            camera: cornell_cam(1.0),
        };
        let responses = service.render_batch(vec![req; 4]);
        let images: Vec<_> = responses.into_iter().map(|r| r.unwrap()).collect();
        for r in &images[1..] {
            assert_eq!(r.image.pixels(), images[0].image.pixels());
        }
        let m = service.metrics();
        // However the queue drained, an identical view never renders twice:
        // followers are coalesced (same batch) or cache hits (later batch).
        assert_eq!(m.completed, 4);
        assert_eq!(m.rendered, 1, "duplicates re-rendered: {m:?}");
        assert_eq!(m.cache_hits + m.coalesced, 3);
    }

    #[test]
    fn shutdown_answers_queued_work_first() {
        let (store, id) = store_with_cornell();
        let service = RenderService::start(store, ServeConfig::default());
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                service.submit(RenderRequest {
                    scene_id: id,
                    camera: cornell_cam(i as f64),
                })
            })
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued request dropped at shutdown");
        }
    }
}
