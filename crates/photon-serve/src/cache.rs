//! The view cache: an LRU of rendered images keyed by (scene, quantized
//! camera).
//!
//! Serving many clients against a handful of stored answers is dominated by
//! repeated and near-identical views (walkthrough clients orbit the same
//! landmarks; dashboards poll fixed viewpoints). A rendered view is a pure
//! function of `(scene, answer epoch, camera)` — so caching is exact, and
//! quantizing the camera before keying folds views that differ by
//! sub-voxel jitter into one entry. The epoch in the key is what keeps a
//! *progressive* solve honest: every publish of a refined answer moves the
//! entry to a new epoch, all old cache keys stop matching, and refreshed
//! views re-render instead of serving stale images.

use crate::store::SceneId;
use photon_core::Camera;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A cache key: scene id, answer epoch, and camera pose snapped to a
/// lattice.
///
/// Positions quantize to `1 / grid` world units and the field of view to
/// centidegrees; two cameras landing on the same lattice point render
/// within one cell of each other, visually indistinguishable at the cell
/// sizes the service defaults to. The epoch pins the key to one published
/// answer: a refined publish changes the epoch and orphans every older
/// key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ViewKey {
    scene: SceneId,
    epoch: u64,
    eye: [i64; 3],
    target: [i64; 3],
    up: [i64; 3],
    vfov_cdeg: i64,
    width: usize,
    height: usize,
}

impl ViewKey {
    /// The scene this key's image was rendered from.
    pub fn scene(&self) -> SceneId {
        self.scene
    }

    /// The answer epoch this key's image was rendered from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Quantizes a request against answer `epoch` with `grid` lattice
    /// cells per world unit.
    pub fn quantize(scene: SceneId, epoch: u64, camera: &Camera, grid: f64) -> Self {
        let q = |v: f64| (v * grid).round() as i64;
        let qv = |v: photon_math::Vec3| [q(v.x), q(v.y), q(v.z)];
        ViewKey {
            scene,
            epoch,
            eye: qv(camera.eye),
            target: qv(camera.target),
            up: qv(camera.up),
            vfov_cdeg: (camera.vfov_deg * 100.0).round() as i64,
            width: camera.width,
            height: camera.height,
        }
    }
}

/// A least-recently-used map with hit/miss accounting.
///
/// Recency is a monotonic tick: `map` holds `key -> (value, tick)` and
/// `order` mirrors `tick -> key`, so eviction pops the smallest tick and a
/// touch moves one key's tick to the front. Both sides stay O(log n).
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`; the service models "no cache" by not
    /// constructing one.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache; disable caching instead");
        LruCache {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((_, stamp)) => {
                self.order.remove(stamp);
                self.order.insert(tick, key.clone());
                *stamp = tick;
                self.hits += 1;
                self.map.get(key).map(|(v, _)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key -> value` as most recently used, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if let Some((_, old)) = self.map.insert(key.clone(), (value, self.tick)) {
            self.order.remove(&old);
        }
        self.order.insert(self.tick, key);
        while self.map.len() > self.capacity {
            let (_, victim) = self.order.pop_first().expect("order mirrors map");
            self.map.remove(&victim);
        }
    }

    /// Drops every entry whose key fails `keep`, returning how many were
    /// removed. The dispatcher uses this to purge a scene's older-epoch
    /// views the moment it observes a fresher publish — orphaned keys can
    /// never match again, so leaving them to generic LRU eviction only
    /// thrashes live entries out.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let mut dropped_ticks = Vec::new();
        self.map.retain(|key, (_, tick)| {
            let keep = keep(key);
            if !keep {
                dropped_ticks.push(*tick);
            }
            keep
        });
        for tick in &dropped_ticks {
            self.order.remove(tick);
        }
        dropped_ticks.len()
    }

    /// Iterates over the keys currently held, in no particular order —
    /// how the dispatcher learns which scenes still have live cached
    /// views when bounding its epoch-tracking map.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_math::Vec3;

    fn cam(eye_x: f64) -> Camera {
        Camera {
            eye: Vec3::new(eye_x, 1.0, -3.0),
            target: Vec3::new(0.0, 1.0, 0.0),
            up: Vec3::Y,
            vfov_deg: 45.0,
            width: 64,
            height: 48,
        }
    }

    #[test]
    fn quantization_folds_jitter_and_separates_views() {
        let a = ViewKey::quantize(SceneId(0), 1, &cam(1.0), 256.0);
        let jittered = ViewKey::quantize(SceneId(0), 1, &cam(1.0 + 1e-4), 256.0);
        let moved = ViewKey::quantize(SceneId(0), 1, &cam(1.5), 256.0);
        let other_scene = ViewKey::quantize(SceneId(1), 1, &cam(1.0), 256.0);
        let refined = ViewKey::quantize(SceneId(0), 2, &cam(1.0), 256.0);
        assert_eq!(a, jittered, "sub-cell jitter must share a key");
        assert_ne!(a, moved);
        assert_ne!(a, other_scene);
        assert_ne!(a, refined, "a fresher epoch must invalidate the key");
        let mut resized = cam(1.0);
        resized.width = 128;
        assert_ne!(a, ViewKey::quantize(SceneId(0), 1, &resized, 256.0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one")); // 1 is now most recent
        c.insert(3, "three"); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn retain_drops_matching_keys_and_their_order() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        c.insert(1, "one");
        c.insert(2, "two");
        c.insert(3, "three");
        assert_eq!(c.retain(|k| *k % 2 == 1), 1, "2 dropped");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        // The freed slot is genuinely free: two inserts evict nothing live.
        c.insert(4, "four");
        c.insert(5, "five");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
    }

    #[test]
    fn view_key_exposes_scene_and_epoch() {
        let k = ViewKey::quantize(SceneId(7), 3, &cam(1.0), 256.0);
        assert_eq!(k.scene(), SceneId(7));
        assert_eq!(k.epoch(), 3);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }
}
