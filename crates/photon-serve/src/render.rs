//! Tile-parallel rendering: the serial viewer's tile loop fanned out over
//! the worker pool.
//!
//! `photon_core::view::render` and this module share one code path —
//! [`photon_core::view::render_tile`] — so an N-worker render is
//! bit-identical to the serial image: same rays, same shading, same f64
//! arithmetic, only the tile *schedule* differs, and tiles write disjoint
//! pixels.

use photon_core::view::{blit_tile, render_tile, tiles};
use photon_core::{Answer, Camera, Image};
use photon_geom::Scene;
use photon_par::parallel_map;

/// Renders `camera`'s view of a stored answer across `threads` workers,
/// decomposed into `tile_size`-sided tiles.
///
/// With `threads == 1` this is exactly the serial viewer.
pub fn render_parallel(
    scene: &Scene,
    answer: &Answer,
    camera: &Camera,
    exposure: f64,
    threads: usize,
    tile_size: usize,
) -> Image {
    let tile_list = tiles(camera.width, camera.height, tile_size);
    let buffers = parallel_map(threads, tile_list.len(), |i| {
        render_tile(scene, answer, camera, tile_list[i], exposure)
    });
    let mut img = Image::new(camera.width, camera.height);
    for (tile, buf) in tile_list.iter().zip(&buffers) {
        blit_tile(&mut img, *tile, buf);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::view::render;
    use photon_core::{SimConfig, Simulator};
    use photon_math::Vec3;
    use photon_scenes::TestScene;

    /// The acceptance bar: tile-parallel rendering with N workers produces
    /// byte-identical images to the serial `view` path.
    #[test]
    fn parallel_render_is_bit_identical_to_serial() {
        let kind = TestScene::CornellBox;
        let mut sim = Simulator::new(
            kind.build(),
            SimConfig {
                seed: 21,
                ..Default::default()
            },
        );
        sim.run_photons(4_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let v = kind.view();
        let camera = Camera {
            eye: v.eye,
            target: v.target,
            up: v.up,
            vfov_deg: v.vfov_deg,
            width: 97, // deliberately not a tile multiple
            height: 53,
        };
        let serial = render(scene, &answer, &camera, 0.02);
        for threads in [1, 2, 4, 8] {
            for tile_size in [7, 16, 32, 1024] {
                let par = render_parallel(scene, &answer, &camera, 0.02, threads, tile_size);
                assert_eq!(
                    par.pixels(),
                    serial.pixels(),
                    "threads={threads} tile_size={tile_size} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn parallel_render_sees_geometry() {
        let mut sim = Simulator::new(
            TestScene::CornellBox.build(),
            SimConfig {
                seed: 2,
                ..Default::default()
            },
        );
        sim.run_photons(4_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let camera = Camera {
            eye: Vec3::new(2.78, 2.73, -7.5),
            target: Vec3::new(2.78, 2.73, 2.8),
            up: Vec3::Y,
            vfov_deg: 40.0,
            width: 48,
            height: 36,
        };
        let img = render_parallel(scene, &answer, &camera, 0.05, 4, 16);
        assert!(img.mean_luminance() > 0.0, "parallel render is black");
    }
}
