//! Scheduler acceptance: fair multi-job scheduling, job lifecycle
//! (pause/resume/cancel), per-tenant quotas, and regression tests for the
//! epoch-lifecycle bug batch.

use photon_core::{Camera, SimConfig, Simulator};
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{
    AnswerStore, RenderRequest, RenderService, ServeConfig, SolveRequest, SolverPool,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cornell_camera() -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 24,
        height: 18,
    }
}

/// The tentpole's acceptance bar: on a **one-worker** pool, a 20k-photon
/// job submitted *after* a 2M-photon job completes while the heavy job is
/// still running — weighted round-robin interleaves their batches instead
/// of serializing them — and the heavy job still reaches its target. The
/// scheduler's state (per-job photons/sec, queue depth) is visible in the
/// render service's `MetricsSnapshot`.
#[test]
fn light_job_finishes_while_heavy_job_still_runs() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    service.attach_solver(pool.stats_source());

    let mut heavy = SolveRequest::new("heavy-tenant-scene", cornell_box());
    heavy.seed = 2_001;
    heavy.batch_size = 50_000;
    heavy.target_photons = 2_000_000;
    heavy.publish_every = 4;
    heavy.tenant = "heavy".into();
    let heavy = pool.submit(heavy);

    let mut light = SolveRequest::new("light-tenant-scene", cornell_box());
    light.seed = 2_002;
    light.batch_size = 2_000;
    light.target_photons = 20_000;
    light.tenant = "light".into();
    let light = pool.submit(light);

    // While both jobs are live on one worker, one holds the slice and the
    // other waits in the run queue: the queue depth must be observable.
    let mut saw_queue_depth = false;
    let light_done = loop {
        let m = service.metrics();
        if m.solver.queue_depth >= 1 {
            saw_queue_depth = true;
        }
        if let Some(p) = light.next_progress(Duration::from_millis(20)) {
            if p.done {
                break p;
            }
        }
    };
    assert_eq!(light_done.emitted, 20_000);
    assert!(
        saw_queue_depth,
        "two live jobs on one worker never showed queue depth"
    );

    // Fairness: at the moment the light job converged, the heavy job must
    // still be short of its target (FIFO would have run it to completion
    // first), and the light job's answer is fully served.
    let heavy_mid = store.get(heavy.scene_id()).unwrap().answer.emitted();
    assert!(
        heavy_mid < 2_000_000,
        "heavy job already finished ({heavy_mid} photons): scheduling is not fair"
    );
    assert_eq!(
        store.get(light.scene_id()).unwrap().answer.emitted(),
        20_000
    );

    // The heavy job is not starved either: it still converges.
    let heavy_done = heavy
        .wait_done(Duration::from_secs(600))
        .expect("heavy job converges after the light job");
    assert_eq!(heavy_done.emitted, 2_000_000);

    // Scheduler state flows through MetricsSnapshot: per-job rates and
    // per-tenant slice accounting.
    let m = service.metrics();
    assert_eq!(m.solver.jobs.len(), 2);
    for job in &m.solver.jobs {
        assert_eq!(job.state, "done");
        assert!(
            job.photons_per_sec > 0.0,
            "per-job photons/sec missing: {job:?}"
        );
        assert!(job.epochs_per_sec > 0.0);
        assert!(job.slices >= 1);
        // Forest footprint gauges ride the same snapshot: a solved job's
        // arenas are non-empty in both the hot and cold arena.
        assert!(
            job.forest_node_bytes > 0 && job.forest_leaf_bytes > 0 && job.forest_leaf_bins > 0,
            "per-job forest footprint missing: {job:?}"
        );
    }
    assert_eq!(
        m.solver.forest_leaf_bins,
        m.solver
            .jobs
            .iter()
            .map(|j| j.forest_leaf_bins)
            .sum::<u64>()
    );
    assert!(m.solver.forest_node_bytes >= m.solver.jobs.len() as u64 * 8);
    let tenants: Vec<&str> = m.solver.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert!(tenants.contains(&"heavy") && tenants.contains(&"light"));
    for t in &m.solver.tenants {
        assert!(t.slices >= 1, "tenant granted no slices: {t:?}");
    }
}

/// Pause parks a job after its in-flight batch; resume puts it back in
/// the rotation and it still converges exactly to target.
#[test]
fn pause_parks_and_resume_finishes() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::new("pausable", cornell_box());
    req.seed = 5;
    req.batch_size = 1_000;
    req.target_photons = 30_000;
    let job = pool.submit(req);

    job.next_progress(Duration::from_secs(60)).expect("started");
    job.pause();
    // Drain whatever was already in flight; then the stream must go quiet.
    while job.next_progress(Duration::from_millis(300)).is_some() {}
    let parked = store.get(job.scene_id()).unwrap().answer.emitted();
    assert!(parked < 30_000, "paused job ran to completion");
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        store.get(job.scene_id()).unwrap().answer.emitted(),
        parked,
        "paused job kept emitting"
    );
    let m = pool.metrics();
    assert_eq!(m.paused, 1, "{m:?}");
    assert_eq!(m.jobs[0].state, "paused");

    job.resume();
    let done = job.wait_done(Duration::from_secs(120)).expect("resumed");
    assert_eq!(done.emitted, 30_000);
    assert!(!done.canceled);
}

/// Cancel publishes one final snapshot (renders keep the best answer so
/// far), reports a canceled terminal progress, and frees the worker for
/// the next job.
#[test]
fn cancel_publishes_final_snapshot_and_frees_the_slot() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::new("doomed", cornell_box());
    req.seed = 6;
    req.batch_size = 1_000;
    req.target_photons = 100_000_000; // would run ~forever
    let job = pool.submit(req);
    let first = job.next_progress(Duration::from_secs(60)).expect("started");
    assert!(first.epoch >= 1);

    job.cancel();
    let done = job.wait_done(Duration::from_secs(60)).expect("canceled");
    assert!(done.done && done.canceled);
    assert!(done.emitted < 100_000_000);
    let entry = store.get(job.scene_id()).unwrap();
    assert_eq!(
        entry.answer.emitted(),
        done.emitted,
        "cancel must publish the final snapshot"
    );
    assert!(entry.epoch >= first.epoch);
    assert_eq!(pool.metrics().jobs[0].state, "canceled");

    // The slot is free: a fresh job gets the worker and converges.
    let mut next = SolveRequest::new("after-cancel", cornell_box());
    next.seed = 7;
    next.batch_size = 1_000;
    next.target_photons = 3_000;
    let next = pool.submit(next);
    let done = next.wait_done(Duration::from_secs(60)).expect("ran");
    assert_eq!(done.emitted, 3_000);
}

/// Canceling a *paused* job still finalizes it — parked jobs are not
/// zombies.
#[test]
fn cancel_finalizes_a_paused_job() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::new("paused-then-canceled", cornell_box());
    req.seed = 8;
    req.batch_size = 1_000;
    req.target_photons = 50_000;
    let job = pool.submit(req);
    job.next_progress(Duration::from_secs(60)).expect("started");
    job.pause();
    while job.next_progress(Duration::from_millis(300)).is_some() {}
    job.cancel();
    let done = job.wait_done(Duration::from_secs(60)).expect("finalized");
    assert!(done.done && done.canceled);
    assert!(done.emitted > 0 && done.emitted < 50_000);
}

/// Canceling a job the scheduler never started publishes nothing — the
/// registered epoch-0 entry keeps serving — but still reports a terminal
/// canceled progress.
#[test]
fn cancel_before_first_slice_publishes_nothing() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    // Occupy the single worker so the second job stays queued.
    let mut busy = SolveRequest::new("busy", cornell_box());
    busy.seed = 20;
    busy.batch_size = 1_000;
    busy.target_photons = 1_000_000;
    let busy = pool.submit(busy);
    busy.next_progress(Duration::from_secs(60))
        .expect("running");
    busy.pause();

    let mut req = SolveRequest::new("never-ran", cornell_box());
    req.seed = 21;
    req.target_photons = 50_000;
    let job = pool.submit(req);
    job.cancel();
    let done = job.wait_done(Duration::from_secs(60)).expect("finalized");
    assert!(done.done && done.canceled);
    assert_eq!(done.emitted, 0);
    let entry = store.get(job.scene_id()).unwrap();
    assert_eq!(entry.epoch, 0, "nothing was solved, nothing published");
    busy.cancel();
}

/// Pausing a quota-blocked job sticks: a later budget top-up must not
/// resume a job its owner explicitly paused.
#[test]
fn pause_survives_a_quota_top_up() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    pool.set_tenant_budget("capped", 2_000);
    let mut req = SolveRequest::new("capped-job", cornell_box());
    req.seed = 22;
    req.batch_size = 2_000;
    req.target_photons = 10_000;
    req.tenant = "capped".into();
    let job = pool.submit(req);
    while job.next_progress(Duration::from_millis(400)).is_some() {}
    assert_eq!(pool.metrics().quota_blocked, 1);

    job.pause();
    pool.add_tenant_budget("capped", 100_000);
    assert!(
        job.next_progress(Duration::from_millis(400)).is_none(),
        "paused job resumed on budget top-up"
    );
    assert_eq!(pool.metrics().paused, 1);
    job.resume();
    let done = job.wait_done(Duration::from_secs(60)).expect("resumed");
    assert_eq!(done.emitted, 10_000);
}

/// Per-tenant photon budgets are enforced at slice grant: an exhausted
/// tenant's job parks at exactly its budget without stalling the pool,
/// and granting more budget wakes it to convergence.
#[test]
fn quota_exhaustion_parks_until_budget_arrives() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    pool.set_tenant_budget("acme", 4_000);

    let mut req = SolveRequest::new("metered", cornell_box());
    req.seed = 9;
    req.batch_size = 2_000;
    req.target_photons = 20_000;
    req.tenant = "acme".into();
    let job = pool.submit(req);

    // An unmetered tenant shares the pool and is unaffected by acme's
    // exhaustion.
    let mut free = SolveRequest::new("unmetered", cornell_box());
    free.seed = 10;
    free.batch_size = 2_000;
    free.target_photons = 10_000;
    let free = pool.submit(free);

    // The metered job emits exactly its budget (two full 2k slices) and
    // then parks.
    while job.next_progress(Duration::from_millis(500)).is_some() {}
    assert_eq!(
        store.get(job.scene_id()).unwrap().answer.emitted(),
        4_000,
        "job must stop at the tenant budget"
    );
    let m = pool.metrics();
    assert_eq!(m.quota_blocked, 1, "{m:?}");
    let acme = m
        .tenants
        .iter()
        .find(|t| t.tenant == "acme")
        .expect("tenant tracked");
    assert_eq!(acme.budget_remaining, Some(0));
    assert_eq!(acme.photons_used, 4_000);
    assert_eq!(acme.quota_blocked_jobs, 1);

    let free_done = free.wait_done(Duration::from_secs(60)).expect("unmetered");
    assert_eq!(free_done.emitted, 10_000);

    // More budget wakes the parked job.
    pool.add_tenant_budget("acme", 100_000);
    let done = job.wait_done(Duration::from_secs(120)).expect("resumed");
    assert_eq!(done.emitted, 20_000);
}

/// Regression (run_job off-by-one): a target that is already met must
/// publish immediately instead of stepping a full batch first. Before the
/// fix, `target_photons: 0` still emitted `batch_size` photons.
#[test]
fn already_met_target_publishes_without_stepping() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::new("zero-target", cornell_box());
    req.seed = 11;
    req.batch_size = 2_000;
    req.target_photons = 0;
    let job = pool.submit(req);
    let done = job.wait_done(Duration::from_secs(60)).expect("immediate");
    assert!(done.done && !done.canceled);
    assert_eq!(done.emitted, 0, "a met target must not emit another batch");
    let entry = store.get(job.scene_id()).unwrap();
    assert_eq!(entry.epoch, 1, "the (empty) final state still publishes");
    assert_eq!(entry.answer.emitted(), 0);
}

/// Regression (stale-epoch view-cache leak): every publish orphans the
/// scene's older-epoch cache keys; the dispatcher must purge them when it
/// observes the epoch advance, not leave them to LRU pressure. Before the
/// fix the cache held one dead image per past epoch.
#[test]
fn stale_epoch_cache_keys_are_purged() {
    let store = Arc::new(AnswerStore::new());
    let scene = cornell_box();
    let id = store.register("refining", scene.clone());
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    let req = RenderRequest {
        scene_id: id,
        camera: cornell_camera(),
    };
    // Render epoch 0, then five refining publishes, re-rendering the same
    // view after each.
    service.render_blocking(req).expect("epoch 0");
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 12,
            ..Default::default()
        },
    );
    for _ in 0..5 {
        sim.run_photons(1_000);
        store.publish(id, sim.answer_snapshot());
        let view = service.render_blocking(req).expect("served");
        assert!(!view.from_cache(), "a fresher epoch must re-render");
    }
    // The reply is sent before the dispatcher records the batch-end cache
    // gauge, so the metrics lag the render by one scheduling quantum —
    // poll briefly instead of racing the dispatcher thread.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut m = service.metrics();
    while (m.cache_entries != 1 || m.cache_purged < 5) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        m = service.metrics();
    }
    assert_eq!(
        m.cache_entries, 1,
        "only the freshest epoch's image may stay cached: {m:?}"
    );
    assert!(
        m.cache_purged >= 5,
        "each epoch advance must purge the orphaned keys: {m:?}"
    );
}

/// Regression (`AnswerStore::publish` last-writer-wins race): a snapshot
/// with fewer photons than the stored answer must be rejected without
/// bumping the epoch, so out-of-order publishes cannot regress a scene.
#[test]
fn stale_publish_cannot_overwrite_a_fresher_answer() {
    let store = AnswerStore::new();
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 13,
            ..Default::default()
        },
    );
    sim.run_photons(1_000);
    let early = sim.answer_snapshot();
    sim.run_photons(4_000);
    let late = sim.answer_snapshot();
    let id = store.register("raced", sim.scene().clone());
    assert_eq!(store.publish(id, late), 1);
    let epoch = store.publish(id, early); // the straggler lands second
    assert_eq!(epoch, 1, "stale publish must return the existing epoch");
    let entry = store.get(id).unwrap();
    assert_eq!(entry.epoch, 1);
    assert_eq!(entry.answer.emitted(), 5_000);
}

/// The migration primitive, end to end: pause a job on one pool, fetch its
/// checkpoint, *drop the pool entirely*, and resume the job on a freshly
/// constructed pool. The resumed job's final published answer must be
/// bit-identical to a never-interrupted job's — and the new pool's tenant
/// budget is charged only for the photons emitted there, never for the
/// resumed ones.
#[test]
fn paused_job_migrates_to_a_fresh_pool_via_its_checkpoint() {
    let seed = 4_040;
    let target = 30_000u64;
    let scene = cornell_box();

    // The never-interrupted reference, through the same pool machinery.
    let reference_store = Arc::new(AnswerStore::new());
    let reference = {
        let pool = SolverPool::start(Arc::clone(&reference_store), 1);
        let mut req = SolveRequest::new("uninterrupted", scene.clone());
        req.seed = seed;
        req.batch_size = 2_000;
        req.target_photons = target;
        let job = pool.submit(req);
        let done = job.wait_done(Duration::from_secs(120)).expect("reference");
        assert_eq!(done.emitted, target);
        reference_store.get(job.scene_id()).unwrap()
    };
    let reference_bytes = {
        let mut buf = Vec::new();
        reference.answer.write_to(&mut buf).unwrap();
        buf
    };

    // First pool: run part of the job, pause it, take the checkpoint.
    let store_a = Arc::new(AnswerStore::new());
    let pool_a = SolverPool::start(Arc::clone(&store_a), 1);
    let mut req = SolveRequest::new("interrupted", scene.clone());
    req.seed = seed;
    req.batch_size = 2_000;
    req.target_photons = target;
    let job_a = pool_a.submit(req);
    job_a
        .next_progress(Duration::from_secs(60))
        .expect("started");
    job_a.pause();
    while job_a.next_progress(Duration::from_millis(300)).is_some() {}
    let ck = job_a
        .checkpoint()
        .expect("a paused job always has a checkpoint");
    assert!(
        ck.emitted() > 0 && ck.emitted() < target,
        "{}",
        ck.emitted()
    );
    assert_eq!(ck.emitted() % 2_000, 0, "pause parks at a batch boundary");
    let m = pool_a.metrics();
    assert!(m.checkpoints_taken >= 1, "{m:?}");
    assert_eq!(m.checkpoint_bytes, ck.encoded_size() * m.checkpoints_taken);
    drop(job_a);
    drop(pool_a); // the first pool is gone; only the checkpoint survives

    // Second pool: resume from the checkpoint under a tenant whose budget
    // covers exactly the *remaining* photons — if resumed photons were
    // charged, the job would park on quota instead of converging.
    let store_b = Arc::new(AnswerStore::new());
    let pool_b = SolverPool::start(Arc::clone(&store_b), 1);
    let remaining = target - ck.emitted();
    pool_b.set_tenant_budget("migrant", remaining);
    let mut req = SolveRequest::resume("resumed", scene, Arc::clone(&ck));
    req.batch_size = 2_000;
    req.target_photons = target;
    req.tenant = "migrant".into();
    let job_b = pool_b.submit(req);
    let done = job_b.wait_done(Duration::from_secs(120)).expect("resumed");
    assert_eq!(done.emitted, target);
    assert!(!done.canceled);

    // Bit-identical to the uninterrupted solve, through the whole
    // pause → checkpoint → new-pool pipeline.
    let resumed = store_b.get(job_b.scene_id()).unwrap();
    let mut resumed_bytes = Vec::new();
    resumed.answer.write_to(&mut resumed_bytes).unwrap();
    assert_eq!(resumed_bytes, reference_bytes, "migrated job diverged");

    // Budget accounting: only the photons emitted on pool B were charged.
    let m = pool_b.metrics();
    let migrant = m
        .tenants
        .iter()
        .find(|t| t.tenant == "migrant")
        .expect("tenant tracked");
    assert_eq!(migrant.photons_used, remaining);
    assert_eq!(migrant.budget_remaining, Some(0));
    let job = &m.jobs[0];
    assert_eq!(job.resumed_photons, ck.emitted());
    assert_eq!(job.emitted, target);
    assert_eq!(job.state, "done");
}

/// Cancel and shutdown both leave a fetchable checkpoint behind: the
/// handle outlives the pool, so a drained job's state can still migrate.
#[test]
fn cancel_and_shutdown_leave_checkpoints_behind() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::new("canceled-migrant", cornell_box());
    req.seed = 31_337;
    req.batch_size = 1_000;
    req.target_photons = 1_000_000;
    let canceled = pool.submit(req);
    canceled
        .next_progress(Duration::from_secs(60))
        .expect("started");
    canceled.cancel();
    let done = canceled.wait_done(Duration::from_secs(60)).expect("final");
    assert!(done.canceled);

    // A second long job parks on pause and is cancel-finalized by the
    // shutdown drain.
    let mut req = SolveRequest::new("shutdown-migrant", cornell_box());
    req.seed = 31_338;
    req.batch_size = 1_000;
    req.target_photons = 1_000_000;
    let parked = pool.submit(req);
    parked
        .next_progress(Duration::from_secs(60))
        .expect("started");
    parked.pause();
    while parked.next_progress(Duration::from_millis(300)).is_some() {}
    pool.shutdown();

    let ck_canceled = canceled.checkpoint().expect("cancel checkpoints");
    let ck_parked = parked.checkpoint().expect("shutdown checkpoints");
    assert_eq!(ck_canceled.emitted(), done.emitted);
    assert!(ck_parked.emitted() > 0);
    // Both checkpoints are real resume points: their encoded form decodes.
    for ck in [ck_canceled, ck_parked] {
        let decoded = photon_core::EngineCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(decoded.emitted(), ck.emitted());
    }
}

/// A checkpoint at or past the target publishes immediately on resume —
/// the already-met-target regression, through the resume path.
#[test]
fn resume_with_a_met_target_publishes_without_stepping() {
    use photon_core::SolverEngine;
    let scene = cornell_box();
    let mut sim = Simulator::new(
        scene.clone(),
        SimConfig {
            seed: 51,
            ..Default::default()
        },
    );
    sim.run_photons(4_000);
    let ck = Arc::new(sim.checkpoint());

    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut req = SolveRequest::resume("already-done", scene, ck);
    req.batch_size = 2_000;
    req.target_photons = 4_000; // met by the checkpoint
    let job = pool.submit(req);
    let done = job.wait_done(Duration::from_secs(60)).expect("immediate");
    assert!(done.done && !done.canceled);
    assert_eq!(done.emitted, 4_000, "a met target must not emit more");
    let entry = store.get(job.scene_id()).unwrap();
    assert_eq!(entry.answer.emitted(), 4_000);
    // The published answer is exactly the checkpoint's solution.
    let mut published = Vec::new();
    entry.answer.write_to(&mut published).unwrap();
    let mut direct = Vec::new();
    sim.answer_snapshot().write_to(&mut direct).unwrap();
    assert_eq!(published, direct);
}

/// Regression (met-target budget leak): the grant-time photon reservation
/// must flow back when the target is already met and nothing is emitted —
/// before the fix, every met-target publish silently shrank the tenant's
/// budget by one batch.
#[test]
fn met_target_publish_returns_the_budget_reservation() {
    use photon_core::SolverEngine;
    let scene = cornell_box();
    let mut sim = Simulator::new(
        scene.clone(),
        SimConfig {
            seed: 53,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let ck = Arc::new(sim.checkpoint());

    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    pool.set_tenant_budget("frugal", 5_000);
    let mut req = SolveRequest::resume("met", scene, ck);
    req.batch_size = 4_000;
    req.target_photons = 2_000; // met by the checkpoint: nothing to emit
    req.tenant = "frugal".into();
    let job = pool.submit(req);
    let done = job.wait_done(Duration::from_secs(60)).expect("immediate");
    assert_eq!(done.emitted, 2_000);
    let m = pool.metrics();
    let frugal = m
        .tenants
        .iter()
        .find(|t| t.tenant == "frugal")
        .expect("tenant tracked");
    assert_eq!(
        frugal.budget_remaining,
        Some(5_000),
        "a met-target publish emitted nothing and must charge nothing"
    );
    assert_eq!(frugal.photons_used, 0);
}

/// Submitting a checkpoint against the wrong scene or seed is refused up
/// front — a mismatched resume would silently corrupt the answer.
#[test]
#[should_panic(expected = "resume checkpoint must match")]
fn submit_rejects_a_checkpoint_for_another_stream() {
    use photon_core::SolverEngine;
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 52,
            ..Default::default()
        },
    );
    sim.run_photons(1_000);
    let ck = Arc::new(sim.checkpoint());
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(store, 1);
    let mut req = SolveRequest::new("wrong-seed", cornell_box());
    req.seed = 99; // not the checkpoint's stream
    req.resume_from = Some(ck);
    let _ = pool.submit(req);
}

/// Sanity: fairness does not cost convergence — N interleaved jobs all
/// reach their exact targets and the total runtime is bounded.
#[test]
fn many_interleaved_jobs_all_converge() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 2);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..5)
        .map(|i| {
            let mut r = SolveRequest::new(format!("job-{i}"), cornell_box());
            r.seed = 100 + i;
            r.batch_size = 1_000;
            r.target_photons = 4_000;
            r.priority = 1 + (i % 3) as u32;
            r.tenant = format!("tenant-{}", i % 2);
            pool.submit(r)
        })
        .collect();
    for h in &handles {
        let done = h.wait_done(Duration::from_secs(120)).expect("converged");
        assert_eq!(done.emitted, 4_000);
    }
    assert!(t0.elapsed() < Duration::from_secs(120));
    let m = pool.metrics();
    assert_eq!(m.done, 5);
    assert_eq!(m.queue_depth + m.running + m.paused + m.quota_blocked, 0);
}
