//! Backend equivalence: every engine solves the *same* simulation.
//!
//! The unified photon stream (block substream per photon, leapfrogged
//! assignment across workers/ranks) makes strong cross-backend claims
//! testable:
//!
//! * serial `Simulator` and the threaded `ParEngine` (deterministic tally
//!   replay) produce **bit-identical** `Answer`s for the same seed and
//!   photon count;
//! * the distributed engine traces the same photon set, so its counters
//!   match serial exactly and its merged forest holds every tally exactly
//!   once;
//! * successive `SolveJob` epochs are monotonically non-decreasing in
//!   tallied photons.

use photon_core::{Answer, SimConfig, Simulator, SolverEngine};
use photon_dist::{BalanceMode, BatchMode, DistConfig, DistEngine};
use photon_par::{ParConfig, ParEngine, TallyMode};
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{AnswerStore, BackendChoice, SolveRequest, SolverPool};
use std::sync::Arc;
use std::time::Duration;

fn answer_bytes(a: &Answer) -> Vec<u8> {
    let mut buf = Vec::new();
    a.write_to(&mut buf).expect("encode answer");
    buf
}

fn serial_answer(scene_kind: TestScene, seed: u64, photons: u64) -> (Answer, Simulator) {
    let mut sim = Simulator::new(
        scene_kind.build(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    (sim.answer_snapshot(), sim)
}

#[test]
fn threaded_engine_answers_are_bit_identical_to_serial() {
    for scene_kind in [TestScene::CornellBox, TestScene::HarpsichordRoom] {
        let (serial, _) = serial_answer(scene_kind, 4097, 5_000);
        let want = answer_bytes(&serial);
        for threads in [1, 2, 4, 7] {
            let mut engine = ParEngine::new(
                scene_kind.build(),
                ParConfig {
                    seed: 4097,
                    threads,
                    tally: TallyMode::Deterministic,
                    ..Default::default()
                },
            );
            // Uneven batching on purpose: the answer may not depend on it.
            engine.step(1_234);
            engine.step(2_766);
            engine.step(1_000);
            assert_eq!(
                answer_bytes(&engine.snapshot()),
                want,
                "{}: threads={threads} diverged from serial",
                scene_kind.name()
            );
        }
    }
}

#[test]
fn distributed_engine_matches_serial_counters_and_tally_invariants() {
    let seed = 515;
    let photons = 6_000u64;
    let (_, serial) = serial_answer(TestScene::CornellBox, seed, photons);
    for nranks in [1usize, 3] {
        let mut engine = DistEngine::new(
            cornell_box(),
            DistConfig {
                seed,
                nranks,
                balance: BalanceMode::Naive,
                batch: BatchMode::Fixed(1),
                ..Default::default()
            },
        );
        // Step in windows that tile the serial photon index space exactly.
        let mut emitted = 0;
        while emitted < photons {
            let report =
                engine.step_round((photons - emitted).min(600 * nranks as u64) / nranks as u64);
            emitted += report.batch_photons;
        }
        // Same photon set ⇒ identical counters, despite rank partitioning.
        assert_eq!(engine.stats(), *serial.stats(), "nranks={nranks}");
        // Merged snapshot holds every tally exactly once.
        let answer = engine.snapshot();
        let tallies: u64 = (0..answer.patch_count() as u32)
            .map(|p| answer.tree(p).tallies())
            .sum();
        assert_eq!(
            tallies,
            serial.forest().total_tallies(),
            "nranks={nranks}: merged tally count diverged"
        );
        assert_eq!(answer.emitted(), photons);
    }
}

#[test]
fn solve_job_epochs_are_monotone_in_tallied_photons() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut request = SolveRequest::new("cornell", cornell_box());
    request.backend = BackendChoice::Threaded { threads: 2 };
    request.seed = 88;
    request.batch_size = 800;
    request.target_photons = 4_000; // 5 epochs
    let handle = pool.submit(request);

    let mut reports = Vec::new();
    while let Some(p) = handle.next_progress(Duration::from_secs(120)) {
        // The store entry visible at (or after) this publish carries at
        // least this epoch and at least these photons.
        let entry = store.get(handle.scene_id()).unwrap();
        assert!(entry.epoch >= p.epoch);
        assert!(entry.answer.emitted() >= p.emitted);
        reports.push(p);
    }
    assert_eq!(reports.len(), 5);
    for pair in reports.windows(2) {
        assert!(pair[1].epoch == pair[0].epoch + 1, "epochs skip: {pair:?}");
        assert!(
            pair[1].emitted >= pair[0].emitted,
            "tallied photons regressed: {pair:?}"
        );
        assert!(
            pair[1].leaf_bins >= pair[0].leaf_bins,
            "refinement regressed: {pair:?}"
        );
    }
    assert!(reports.last().unwrap().done);

    // The threaded deterministic backend's published answer equals the
    // serial reference at the same photon count — through the whole
    // pipeline, not just engine-to-engine.
    let (serial, _) = serial_answer(TestScene::CornellBox, 88, 4_000);
    let published = store.get(handle.scene_id()).unwrap();
    assert_eq!(answer_bytes(&published.answer), answer_bytes(&serial));
}
