//! Backend equivalence: every engine solves the *same* simulation.
//!
//! The unified photon stream (block substream per photon, leapfrogged
//! assignment across workers/ranks) makes strong cross-backend claims
//! testable:
//!
//! * serial `Simulator` and the threaded `ParEngine` (deterministic tally
//!   replay) produce **bit-identical** `Answer`s for the same seed and
//!   photon count;
//! * the distributed engine traces the same photon set, so its counters
//!   match serial exactly and its merged forest holds every tally exactly
//!   once;
//! * successive `SolveJob` epochs are monotonically non-decreasing in
//!   tallied photons;
//! * a checkpoint taken at photon `N` under any order-preserving backend,
//!   restored into any order-preserving backend (after a `PHOTCK1` codec
//!   round trip), and stepped to `M` photons is **bit-identical** to an
//!   uninterrupted `M`-photon solve — and a distributed world resumes
//!   bit-identically into a freshly booted world of the same shape.

use photon_core::{Answer, EngineCheckpoint, SimConfig, Simulator, SolverEngine};
use photon_dist::{BalanceMode, BatchMode, DistConfig, DistEngine};
use photon_par::{ParConfig, ParEngine};
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{AnswerStore, BackendChoice, SolveRequest, SolverPool};
use std::sync::Arc;
use std::time::Duration;

fn answer_bytes(a: &Answer) -> Vec<u8> {
    let mut buf = Vec::new();
    a.write_to(&mut buf).expect("encode answer");
    buf
}

fn serial_answer(scene_kind: TestScene, seed: u64, photons: u64) -> (Answer, Simulator) {
    let mut sim = Simulator::new(
        scene_kind.build(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    (sim.answer_snapshot(), sim)
}

#[test]
fn threaded_engine_answers_are_bit_identical_to_serial() {
    for scene_kind in [TestScene::CornellBox, TestScene::HarpsichordRoom] {
        let (serial, _) = serial_answer(scene_kind, 4097, 5_000);
        let want = answer_bytes(&serial);
        for threads in [1, 2, 4, 7] {
            let mut engine = ParEngine::new(
                scene_kind.build(),
                ParConfig {
                    seed: 4097,
                    threads,
                    ..Default::default()
                },
            );
            // Uneven batching on purpose: the answer may not depend on it.
            engine.step(1_234);
            engine.step(2_766);
            engine.step(1_000);
            assert_eq!(
                answer_bytes(&engine.snapshot()),
                want,
                "{}: threads={threads} diverged from serial",
                scene_kind.name()
            );
        }
    }
}

#[test]
fn distributed_engine_matches_serial_counters_and_tally_invariants() {
    let seed = 515;
    let photons = 6_000u64;
    let (_, serial) = serial_answer(TestScene::CornellBox, seed, photons);
    for nranks in [1usize, 3] {
        let mut engine = DistEngine::new(
            cornell_box(),
            DistConfig {
                seed,
                nranks,
                balance: BalanceMode::Naive,
                batch: BatchMode::Fixed(1),
                ..Default::default()
            },
        );
        // Step in windows that tile the serial photon index space exactly.
        let mut emitted = 0;
        while emitted < photons {
            let report =
                engine.step_round((photons - emitted).min(600 * nranks as u64) / nranks as u64);
            emitted += report.batch_photons;
        }
        // Same photon set ⇒ identical counters, despite rank partitioning.
        assert_eq!(engine.stats(), *serial.stats(), "nranks={nranks}");
        // Merged snapshot holds every tally exactly once.
        let answer = engine.snapshot();
        let tallies: u64 = (0..answer.patch_count() as u32)
            .map(|p| answer.tree(p).tallies())
            .sum();
        assert_eq!(
            tallies,
            serial.forest().total_tallies(),
            "nranks={nranks}: merged tally count diverged"
        );
        assert_eq!(answer.emitted(), photons);
    }
}

/// The tentpole invariant, engine-to-engine: checkpoint at `N`, restore
/// across the serial↔threaded boundary (both directions, several split
/// points, uneven thread counts), step to `M` — the answer is bit-identical
/// to the uninterrupted reference. Every checkpoint crosses the `PHOTCK1`
/// codec on the way, so the bytes on disk carry the whole resume state.
#[test]
fn checkpoint_resume_is_bit_identical_across_serial_and_threaded() {
    let seed = 777;
    let total = 6_000u64;
    let (reference, _) = serial_answer(TestScene::CornellBox, seed, total);
    let want = answer_bytes(&reference);
    let par_engine = |threads: usize| {
        ParEngine::new(
            cornell_box(),
            ParConfig {
                seed,
                threads,
                ..Default::default()
            },
        )
    };
    let roundtrip = |ck: EngineCheckpoint| {
        EngineCheckpoint::from_bytes(&ck.to_bytes()).expect("codec round trip")
    };
    for split_at in [1u64, 1_234, 3_000, 5_999] {
        // Serial solves the prefix; the suffix runs threaded.
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        serial.run_photons(split_at);
        let ck = roundtrip(serial.checkpoint());
        assert_eq!(ck.cursor(), split_at);
        let mut threaded = par_engine(3);
        threaded.restore(&ck).expect("serial → threaded restore");
        threaded.step(total - split_at);
        assert_eq!(
            answer_bytes(&threaded.snapshot()),
            want,
            "serial→threaded resume at {split_at} diverged"
        );

        // Threaded solves the prefix; the suffix runs serial.
        let mut threaded = par_engine(4);
        threaded.step(split_at);
        let ck = roundtrip(threaded.checkpoint());
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        serial.restore(&ck).expect("threaded → serial restore");
        serial.run_photons(total - split_at);
        assert_eq!(
            answer_bytes(&serial.answer_snapshot()),
            want,
            "threaded→serial resume at {split_at} diverged"
        );

        // Threaded → threaded across a different worker count.
        let mut threaded = par_engine(2);
        threaded.step(split_at);
        let ck = roundtrip(threaded.checkpoint());
        let mut wider = par_engine(7);
        wider.restore(&ck).expect("threaded → threaded restore");
        wider.step(total - split_at);
        assert_eq!(
            answer_bytes(&wider.snapshot()),
            want,
            "2→7-thread resume at {split_at} diverged"
        );
    }
}

/// A distributed world's checkpoint resumes bit-identically into a *fresh*
/// world of the same shape: the original engine is dropped entirely, a new
/// rank world boots, restores, and continues the same step schedule.
#[test]
fn distributed_checkpoint_resumes_bit_identically_on_a_fresh_world() {
    let config = DistConfig {
        seed: 901,
        nranks: 3,
        balance: BalanceMode::Naive,
        batch: BatchMode::Fixed(1),
        ..Default::default()
    };
    let per_rank = 400u64;
    let rounds_total = 6;
    let rounds_before = 2;

    let mut straight = DistEngine::new(cornell_box(), config);
    for _ in 0..rounds_total {
        straight.step_round(per_rank);
    }
    let want = answer_bytes(&straight.snapshot());

    let mut first = DistEngine::new(cornell_box(), config);
    for _ in 0..rounds_before {
        first.step_round(per_rank);
    }
    let ck = EngineCheckpoint::from_bytes(&first.checkpoint().to_bytes()).expect("codec");
    assert_eq!(ck.cursor(), per_rank * 3 * rounds_before);
    drop(first);

    let mut resumed = DistEngine::new(cornell_box(), config);
    resumed.restore(&ck).expect("same-shape world restore");
    for _ in 0..rounds_total - rounds_before {
        resumed.step_round(per_rank);
    }
    assert_eq!(resumed.stats(), straight.stats());
    assert_eq!(
        answer_bytes(&resumed.snapshot()),
        want,
        "fresh-world resume diverged from the uninterrupted distributed run"
    );
}

/// Crossing the order boundary — a serial checkpoint restored into a
/// distributed world — keeps the photon-set invariants: the union of
/// photons is exactly the serial stream, so the counters and tally totals
/// match the uninterrupted serial run even though rank-partitioned tally
/// order may move bin boundaries.
#[test]
fn serial_checkpoint_restored_into_distributed_keeps_photon_set_invariants() {
    let seed = 640;
    let total = 5_000u64;
    let split_at = 2_000u64;
    let (_, serial) = serial_answer(TestScene::CornellBox, seed, total);

    let mut prefix = Simulator::new(
        cornell_box(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    prefix.run_photons(split_at);
    let ck = prefix.checkpoint();

    let mut dist = DistEngine::new(
        cornell_box(),
        DistConfig {
            seed,
            nranks: 3,
            balance: BalanceMode::Naive,
            batch: BatchMode::Fixed(1),
            ..Default::default()
        },
    );
    dist.restore(&ck).expect("serial → distributed restore");
    let mut emitted = split_at;
    while emitted < total {
        let report = dist.step_round((total - emitted).min(1_500) / 3);
        emitted += report.batch_photons;
    }
    assert_eq!(dist.stats(), *serial.stats());
    let answer = dist.snapshot();
    let tallies: u64 = (0..answer.patch_count() as u32)
        .map(|p| answer.tree(p).tallies())
        .sum();
    assert_eq!(tallies, serial.forest().total_tallies());
    assert_eq!(answer.emitted(), total);
}

#[test]
fn solve_job_epochs_are_monotone_in_tallied_photons() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let mut request = SolveRequest::new("cornell", cornell_box());
    request.backend = BackendChoice::Threaded { threads: 2 };
    request.seed = 88;
    request.batch_size = 800;
    request.target_photons = 4_000; // 5 epochs
    let handle = pool.submit(request);

    let mut reports = Vec::new();
    while let Some(p) = handle.next_progress(Duration::from_secs(120)) {
        // The store entry visible at (or after) this publish carries at
        // least this epoch and at least these photons.
        let entry = store.get(handle.scene_id()).unwrap();
        assert!(entry.epoch >= p.epoch);
        assert!(entry.answer.emitted() >= p.emitted);
        reports.push(p);
    }
    assert_eq!(reports.len(), 5);
    for pair in reports.windows(2) {
        assert!(pair[1].epoch == pair[0].epoch + 1, "epochs skip: {pair:?}");
        assert!(
            pair[1].emitted >= pair[0].emitted,
            "tallied photons regressed: {pair:?}"
        );
        assert!(
            pair[1].leaf_bins >= pair[0].leaf_bins,
            "refinement regressed: {pair:?}"
        );
    }
    assert!(reports.last().unwrap().done);

    // The threaded deterministic backend's published answer equals the
    // serial reference at the same photon count — through the whole
    // pipeline, not just engine-to-engine.
    let (serial, _) = serial_answer(TestScene::CornellBox, 88, 4_000);
    let published = store.get(handle.scene_id()).unwrap();
    assert_eq!(answer_bytes(&published.answer), answer_bytes(&serial));
}
