//! Streaming acceptance + dispatcher-robustness regressions.
//!
//! The tentpole bar: a subscriber to a progressively solved scene receives
//! ≥ 2 [`FrameDelta`]s without polling, reassembles them into images
//! bit-identical to full renders of the same epochs, and ships strictly
//! fewer tile-bytes than a frame-per-epoch protocol would. The satellite
//! bars: a degenerate or panicking job errors without killing the shared
//! dispatcher, consumed tickets fail fast, and the dispatcher's per-scene
//! epoch map stays bounded across many scenes.

use photon_core::{Camera, SimConfig, Simulator};
use photon_math::Vec3;
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{
    render_parallel, AnswerStore, BackendChoice, RenderRequest, RenderService, ServeConfig,
    ServeError, SolveRequest, SolverPool, StreamRequest,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The Cornell view pulled back so the box floats against black background
/// — those tiles never change across epochs, which is what makes tile
/// deltas strictly cheaper than full frames.
fn distant_cornell_camera() -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: Vec3::new(v.eye.x, v.eye.y, -15.0),
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 64,
        height: 48,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        render_threads: 2,
        tile_size: 16,
        ..ServeConfig::default()
    }
}

/// Deterministic tentpole acceptance: manual publishes drive the epochs,
/// so the exact delta sequence is fixed — bootstrap at epoch 0, one delta
/// per publish — and every reassembled frame must equal a from-scratch
/// `render_parallel` of that epoch, bit for bit.
#[test]
fn deltas_reassemble_bit_identical_to_full_renders() {
    let store = Arc::new(AnswerStore::new());
    let config = serve_config();
    let service = RenderService::start(Arc::clone(&store), config);
    let camera = distant_cornell_camera();

    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 604,
            ..Default::default()
        },
    );
    let id = store.register("cornell-deltas", sim.scene().clone());
    let stream = service
        .subscribe(StreamRequest {
            scene_id: id,
            camera,
        })
        .expect("subscribe");

    // Bootstrap: epoch 0 renders black, and black-vs-black diffs empty.
    let d0 = stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap delta");
    assert_eq!(d0.epoch, 0);
    assert!(d0.is_empty(), "black scene must ship zero tiles");
    let mut canvas = d0.canvas();
    d0.apply(&mut canvas);

    // Two refining publishes → two deltas, each reassembling exactly.
    let mut received = vec![d0];
    for round in 1..=2u64 {
        sim.run_photons(3_000);
        assert_eq!(store.publish(id, sim.answer_snapshot()), round);
        let delta = stream
            .recv_timeout(Duration::from_secs(60))
            .expect("publish pushes a delta");
        assert_eq!(delta.epoch, round);
        assert!(!delta.is_empty(), "a refinement must change pixels");
        delta.apply(&mut canvas);

        let entry = store.get(id).expect("stored");
        assert_eq!(entry.epoch, round);
        let reference = render_parallel(
            &entry.scene,
            &entry.answer,
            &camera,
            entry.exposure,
            config.render_threads,
            config.tile_size,
        );
        assert_eq!(
            canvas.pixels(),
            reference.pixels(),
            "epoch {round}: reassembled frame diverged from a full render"
        );
        received.push(delta);
    }
    assert!(received.len() >= 2, "acceptance: at least two deltas");

    // Strictly fewer bytes than a frame-per-epoch protocol: background
    // tiles never ship, and unchanged interior tiles are skipped.
    let tile_bytes: usize = received.iter().map(|d| d.tile_bytes()).sum();
    let full_bytes: usize = received.iter().map(|d| d.full_frame_bytes()).sum();
    assert!(
        tile_bytes < full_bytes,
        "deltas ({tile_bytes} B) must undercut full frames ({full_bytes} B)"
    );
    for delta in &received[1..] {
        assert!(
            delta.tile_bytes() < delta.full_frame_bytes(),
            "every refinement delta must skip the background tiles"
        );
    }

    let m = service.metrics();
    assert_eq!(m.stream.subscribers, 1);
    assert_eq!(m.stream.deltas, 3);
    assert!(m.stream.bytes_saved() > 0);

    // Dropping the handle unsubscribes: the next publish finds the dead
    // channel and removes the subscriber.
    drop(stream);
    sim.run_photons(1_000);
    store.publish(id, sim.answer_snapshot());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if service.metrics().stream.subscribers == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dropped handle never unsubscribed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The end-to-end acceptance: a pool-driven progressive solve pushes
/// deltas to a subscriber with no polling anywhere — epoch advances are
/// gated deterministically through tenant-budget top-ups.
#[test]
fn progressive_solve_pushes_deltas_without_polling() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), serve_config());
    let camera = distant_cornell_camera();

    // Zero budget parks the job at submission, so the subscription is in
    // place before the first photon — no publish can be missed.
    pool.set_tenant_budget("stream", 0);
    let mut request = SolveRequest::new("cornell-push", cornell_box());
    request.backend = BackendChoice::Serial;
    request.seed = 71;
    request.batch_size = 2_000;
    request.target_photons = 4_000;
    request.tenant = "stream".into();
    let job = pool.submit(request);
    let stream = service
        .subscribe(StreamRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("subscribe");
    let d0 = stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    assert_eq!(d0.epoch, 0);
    let mut canvas = d0.canvas();
    d0.apply(&mut canvas);

    // Each top-up funds exactly one batch → one publish → one delta.
    let mut deltas = 1u64;
    for expected_epoch in 1..=2u64 {
        pool.add_tenant_budget("stream", 2_000);
        let delta = stream
            .recv_timeout(Duration::from_secs(120))
            .expect("delta pushed, not polled");
        assert_eq!(delta.epoch, expected_epoch);
        delta.apply(&mut canvas);
        deltas += 1;
    }
    assert!(deltas >= 2, "acceptance: ≥ 2 deltas");
    job.wait_done(Duration::from_secs(120)).expect("converged");

    // The reassembled viewport equals what an interactive client is served
    // for the same epoch — the service's own render of epoch 2.
    let view = service
        .render_blocking(RenderRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("served");
    assert_eq!(view.epoch, 2);
    assert_eq!(
        canvas.pixels(),
        view.image.pixels(),
        "streamed viewport diverged from the served frame"
    );
    assert!(canvas.mean_luminance() > 0.0, "the solve lit the scene");
}

/// Regression (one bad job kills the service): a zero-area camera is
/// rejected with `InvalidRequest` before rendering, and the dispatcher
/// keeps serving afterwards.
#[test]
fn degenerate_camera_is_rejected_not_fatal() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 8,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell", sim.scene().clone(), sim.answer_snapshot());
    let service = RenderService::start(Arc::clone(&store), serve_config());

    let mut flat = distant_cornell_camera();
    flat.width = 0;
    let err = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera: flat,
        })
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::InvalidRequest("camera has zero pixel area")
    );

    let mut thin = distant_cornell_camera();
    thin.height = 0;
    assert!(matches!(
        service.subscribe(StreamRequest {
            scene_id: id,
            camera: thin
        }),
        Err(ServeError::InvalidRequest(_))
    ));

    // The dispatcher never saw the poison; real work still flows.
    let ok = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera: distant_cornell_camera(),
        })
        .expect("valid request after the rejected one");
    assert!(ok.image.mean_luminance() > 0.0);
}

/// Regression (one bad job kills the service): `tile_size: 0` used to trip
/// `tiles()`'s assert inside the dispatcher — the first request killed the
/// thread and every later ticket resolved `ServiceStopped`. Degenerate
/// configs are now clamped at start.
#[test]
fn tile_size_zero_config_still_serves() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 9,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell", sim.scene().clone(), sim.answer_snapshot());
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            tile_size: 0,
            render_threads: 0,
            max_batch: 0,
            quant_grid: f64::NAN,
            ..ServeConfig::default()
        },
    );
    let camera = distant_cornell_camera();
    let a = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera,
        })
        .expect("degenerate config clamped, request served");
    // Tile decomposition never changes pixels: the clamped config renders
    // the same image as the defaults.
    let reference = render_parallel(
        &sim.scene().clone(),
        &sim.answer_snapshot(),
        &camera,
        store.get(id).unwrap().exposure,
        2,
        32,
    );
    assert_eq!(a.image.pixels(), reference.pixels());
    // And a second request proves the dispatcher survived the first.
    let b = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera,
        })
        .expect("still serving");
    assert!(b.from_cache());
}

/// Regression (one bad job kills the service): a render that panics
/// mid-job — here via a camera whose pixel buffer exceeds the allocator's
/// limits — answers its waiter with `RenderFailed` while the dispatcher
/// survives to serve the next request.
#[test]
fn panicking_job_answers_error_and_dispatcher_survives() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 10,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell", sim.scene().clone(), sim.answer_snapshot());
    // One giant tile keeps the tile list tiny; the per-tile pixel buffer
    // (2^62 pixels) then trips Vec's capacity-overflow panic before any
    // allocation happens — a deterministic stand-in for "a job panicked".
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            tile_size: 1 << 40,
            ..ServeConfig::default()
        },
    );
    let mut huge = distant_cornell_camera();
    huge.width = 1 << 31;
    huge.height = 1 << 31;
    let err = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera: huge,
        })
        .unwrap_err();
    assert_eq!(err, ServeError::RenderFailed, "waiter answered, not hung");

    let ok = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera: distant_cornell_camera(),
        })
        .expect("dispatcher survived the panic");
    assert!(ok.image.mean_luminance() > 0.0);
}

/// Regression (consumed tickets mislead): after a response is collected,
/// waiting again returns `TicketConsumed` immediately instead of blocking
/// out the whole timeout and claiming `TimedOut`.
#[test]
fn consumed_ticket_rewait_is_immediate() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 11,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell", sim.scene().clone(), sim.answer_snapshot());
    let service = RenderService::start(Arc::clone(&store), serve_config());
    let ticket = service.submit(RenderRequest {
        scene_id: id,
        camera: distant_cornell_camera(),
    });
    ticket
        .wait_timeout(Duration::from_secs(60))
        .expect("served");
    let t0 = Instant::now();
    let err = ticket.wait_timeout(Duration::from_secs(10)).unwrap_err();
    assert_eq!(err, ServeError::TicketConsumed);
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "consumed ticket must fail fast, not burn the timeout"
    );
}

/// A dropped handle on a scene that never publishes again must still be
/// swept (freeing its retained frame) as soon as the dispatcher does any
/// work at all — not only when that scene's epoch advances.
#[test]
fn dropped_handle_on_quiet_scene_is_swept() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 13,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let quiet = store.insert("finished", sim.scene().clone(), sim.answer_snapshot());
    let busy = store.insert("busy", sim.scene().clone(), sim.answer_snapshot());
    let service = RenderService::start(Arc::clone(&store), serve_config());
    let camera = distant_cornell_camera();

    let stream = service
        .subscribe(StreamRequest {
            scene_id: quiet,
            camera,
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    drop(stream);

    // Unrelated traffic — no publish ever touches `quiet` again.
    service
        .render_blocking(RenderRequest {
            scene_id: busy,
            camera,
        })
        .expect("served");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if service.metrics().stream.subscribers == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned subscription to a quiet scene was never swept"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Regression (idle service never sweeps): a dropped handle used to be
/// swept only on the dispatcher's *next activity* — on a fully idle
/// service (no publishes, no requests, nothing) the dispatcher blocked in
/// `recv()` forever and the abandoned subscription pinned its retained
/// frame for the service's life. The housekeeping tick now bounds the
/// wait to roughly `housekeep_ms`.
#[test]
fn dropped_handle_on_idle_service_is_swept_by_housekeeping() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 14,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("idle", sim.scene().clone(), sim.answer_snapshot());
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            housekeep_ms: 50,
            ..serve_config()
        },
    );
    let stream = service
        .subscribe(StreamRequest {
            scene_id: id,
            camera: distant_cornell_camera(),
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    // The gauge lands when the dispatcher finishes the iteration that
    // registered the subscription — poll briefly.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.metrics().stream.subscribers != 1 {
        assert!(Instant::now() < deadline, "subscription never registered");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(stream);

    // No publish, no request, no traffic of any kind from here on.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if service.metrics().stream.subscribers == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle service never swept the dropped handle"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Regression (unbounded subscriber queue): a consumer that stops
/// receiving used to accumulate one queued delta per publish, unbounded.
/// Now at most `stream_window` deltas sit in the channel; everything
/// beyond folds into a single pending squashed delta (counted by
/// `deltas_squashed`, entered via one `lag_events`), and draining later
/// still reassembles the final epoch bit-identically.
#[test]
fn stalled_consumer_is_coalesced_and_reassembles_exactly() {
    let store = Arc::new(AnswerStore::new());
    let config = ServeConfig {
        stream_window: 2,
        housekeep_ms: 50,
        ..serve_config()
    };
    let service = RenderService::start(Arc::clone(&store), config);
    let camera = distant_cornell_camera();
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 15,
            ..Default::default()
        },
    );
    let id = store.register("stall", sim.scene().clone());
    let stream = service
        .subscribe(StreamRequest {
            scene_id: id,
            camera,
        })
        .expect("subscribe");
    let d0 = stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    let mut canvas = d0.canvas();
    d0.apply(&mut canvas);

    // Five refining publishes, never receiving: the first two fill the
    // window, the remaining three fold into one pending delta. Each
    // publish is gated on the dispatcher's accounting so the sequence is
    // deterministic.
    let rounds = 5u64;
    for round in 1..=rounds {
        sim.run_photons(1_000);
        assert_eq!(store.publish(id, sim.answer_snapshot()), round);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let m = service.metrics().stream;
            if m.deltas + m.deltas_squashed == 1 + round {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "publish {round} never accounted for"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let m = service.metrics().stream;
    assert_eq!(
        (m.deltas, m.deltas_squashed, m.lag_events),
        (3, 3, 1),
        "bootstrap + window of 2 delivered; 3 folded behind 1 lag transition"
    );

    // Drain the window: epochs 1 and 2 arrive verbatim.
    let drained = stream.drain();
    assert_eq!(
        drained.iter().map(|d| d.epoch).collect::<Vec<_>>(),
        vec![1, 2]
    );
    for delta in &drained {
        delta.apply(&mut canvas);
    }
    // Housekeeping flushes the pending squash — one delta carrying the
    // final epoch, skipping 3 and 4 entirely.
    let squashed = stream
        .recv_timeout(Duration::from_secs(30))
        .expect("pending squash flushed after drain");
    assert_eq!(squashed.epoch, rounds);
    squashed.apply(&mut canvas);

    let entry = store.get(id).expect("stored");
    let reference = render_parallel(
        &entry.scene,
        &entry.answer,
        &camera,
        entry.exposure,
        config.render_threads,
        config.tile_size,
    );
    assert_eq!(
        canvas.pixels(),
        reference.pixels(),
        "coalesced stream diverged from a full render of the final epoch"
    );
}

/// Regression (empty republish spam): republishing bit-identical pixels
/// advances the epoch but used to push an empty delta to every
/// subscriber. Empty deltas are now suppressed by default — and the
/// subscriber's cursor still advances, so the next real refinement diffs
/// correctly. Opting into `stream_keepalive` restores the old behavior.
#[test]
fn identical_republish_sends_nothing_unless_keepalive() {
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 16,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let first = sim.answer_snapshot();
    sim.run_photons(2_000);
    let second = sim.answer_snapshot();
    let scene = sim.scene().clone();
    let camera = distant_cornell_camera();

    // Default: suppression on.
    let store = Arc::new(AnswerStore::new());
    let id = store.insert("quiet", scene.clone(), first.clone());
    let service = RenderService::start(Arc::clone(&store), serve_config());
    let stream = service
        .subscribe(StreamRequest {
            scene_id: id,
            camera,
        })
        .expect("subscribe");
    let d0 = stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    assert!(!d0.is_empty(), "solved scene bootstraps with pixels");
    let mut canvas = d0.canvas();
    d0.apply(&mut canvas);

    // `insert` seeds epoch 1, so the republish lands at epoch 2.
    assert_eq!(store.publish(id, first.clone()), 2, "identical republish");
    assert!(
        matches!(
            stream.recv_timeout(Duration::from_secs(2)),
            Err(ServeError::TimedOut)
        ),
        "identical pixels must not produce a delta"
    );
    assert_eq!(service.metrics().stream.deltas, 1, "bootstrap only");

    // The suppressed epoch still advanced the cursor: the next real
    // refinement arrives at epoch 3 and reassembles exactly.
    assert_eq!(store.publish(id, second.clone()), 3);
    let d2 = stream
        .recv_timeout(Duration::from_secs(60))
        .expect("real refinement still flows");
    assert_eq!(d2.epoch, 3);
    assert!(!d2.is_empty());
    d2.apply(&mut canvas);
    let entry = store.get(id).expect("stored");
    let reference = render_parallel(&entry.scene, &entry.answer, &camera, entry.exposure, 2, 16);
    assert_eq!(canvas.pixels(), reference.pixels());

    // Keepalive opt-in: the empty delta is delivered, epoch attached.
    let store = Arc::new(AnswerStore::new());
    let id = store.insert("chatty", scene, first.clone());
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            stream_keepalive: true,
            ..serve_config()
        },
    );
    let stream = service
        .subscribe(StreamRequest {
            scene_id: id,
            camera,
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(30))
        .expect("bootstrap");
    assert_eq!(store.publish(id, first), 2);
    let keepalive = stream
        .recv_timeout(Duration::from_secs(60))
        .expect("keepalive mode delivers the empty delta");
    assert_eq!(keepalive.epoch, 2);
    assert!(keepalive.is_empty());
}

/// Regression (`seen_epoch` leaks): the dispatcher's per-scene epoch map
/// used to grow one entry per scene forever; it is now bounded by the
/// scenes that still hold cached views, observable through metrics.
#[test]
fn epoch_tracking_stays_bounded_across_many_scenes() {
    let store = Arc::new(AnswerStore::new());
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 12,
            ..Default::default()
        },
    );
    sim.run_photons(1_000);
    let early = sim.answer_snapshot();
    sim.run_photons(1_000);
    let late = sim.answer_snapshot();
    let scene = sim.scene().clone();

    let cache_capacity = 4;
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            cache_capacity,
            render_threads: 1,
            ..serve_config()
        },
    );
    let mut camera = distant_cornell_camera();
    camera.width = 24;
    camera.height = 18;

    // Many scenes, each rendered once: every one lands an epoch-tracking
    // entry and a cache key (older keys fall to LRU eviction).
    let ids: Vec<_> = (0..10)
        .map(|i| store.insert(format!("scene-{i}"), scene.clone(), early.clone()))
        .collect();
    for &id in &ids {
        service
            .render_blocking(RenderRequest {
                scene_id: id,
                camera,
            })
            .expect("served");
    }
    // Serve-only bound: even with no publish ever (static scenes), the
    // map must not exceed the cache's contents — entries for scenes whose
    // views were LRU-evicted are dead weight and get dropped.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = service.metrics();
        if m.seen_epoch_entries <= cache_capacity as u64 + 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "epoch map leaked without any publish: {} entries for {} scenes",
            m.seen_epoch_entries,
            ids.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Touch scene 0 so its view is freshly cached, then publish: the
    // purge path drops the now-stale key and, with it, the tracking
    // entries of every scene whose cached views are all gone.
    service
        .render_blocking(RenderRequest {
            scene_id: ids[0],
            camera,
        })
        .expect("re-served");
    store.publish(ids[0], late.clone());
    service
        .render_blocking(RenderRequest {
            scene_id: ids[0],
            camera,
        })
        .expect("served after publish");
    // The gauge lands when the dispatcher finishes its drain, which can
    // trail the response by a moment — poll briefly.
    let deadline = Instant::now() + Duration::from_secs(30);
    let m = loop {
        let m = service.metrics();
        if m.seen_epoch_entries <= cache_capacity as u64 + 1 {
            break m;
        }
        assert!(
            Instant::now() < deadline,
            "epoch map leaked: {} entries for {} scenes (cache holds {})",
            m.seen_epoch_entries,
            ids.len(),
            m.cache_entries
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(m.cache_purged >= 1, "stale epoch-1 key was purged");
}
