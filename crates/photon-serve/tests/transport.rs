//! Off-box transport acceptance: N TCP subscribers over a loopback
//! `StreamServer` each reassemble every epoch bit-identical to a
//! server-side `render_parallel`; a quantized subscriber stays within the
//! advertised error bound; a deliberately stalled consumer is coalesced
//! server-side (squash counter observed, retained state bounded) while a
//! fast consumer on the same scene streams on unaffected.

use photon_core::{Camera, Image, SimConfig, Simulator};
use photon_math::Vec3;
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{
    render_parallel, AnswerStore, RenderService, SceneId, ServeConfig, StreamClient, StreamServer,
    WireMode,
};
use std::sync::Arc;
use std::time::Duration;

fn cornell_camera(phase: f64, width: usize, height: usize) -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: Vec3::new(v.eye.x + phase.cos(), v.eye.y, -15.0 + phase.sin()),
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width,
        height,
    }
}

fn reference_frame(
    store: &AnswerStore,
    id: SceneId,
    camera: &Camera,
    config: &ServeConfig,
) -> Image {
    let entry = store.get(id).expect("stored");
    render_parallel(
        &entry.scene,
        &entry.answer,
        camera,
        entry.exposure,
        config.render_threads,
        config.tile_size,
    )
}

/// The tentpole acceptance: three TCP subscribers (two sharing a
/// viewpoint, one apart) each receive the bootstrap plus one delta per
/// publish, and applying them reassembles every epoch bit-for-bit.
#[test]
fn tcp_subscribers_reassemble_every_epoch_bit_identical() {
    let store = Arc::new(AnswerStore::new());
    let config = ServeConfig {
        render_threads: 2,
        tile_size: 16,
        ..ServeConfig::default()
    };
    let service = Arc::new(RenderService::start(Arc::clone(&store), config));
    let server = StreamServer::serve(Arc::clone(&service)).expect("bind loopback");

    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 31,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell-tcp", sim.scene().clone(), sim.answer_snapshot());

    let cameras = [
        cornell_camera(0.0, 48, 36),
        cornell_camera(0.0, 48, 36),
        cornell_camera(1.3, 48, 36),
    ];
    let mut clients: Vec<StreamClient> = cameras
        .iter()
        .map(|&camera| {
            StreamClient::connect(server.local_addr(), id, camera, WireMode::Lossless)
                .expect("connect")
        })
        .collect();
    for client in &clients {
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
    }

    // Bootstrap: epoch 1 (insert seeds epoch 1), non-empty for a solved
    // scene, already bit-identical to a full render.
    let mut canvases: Vec<Image> = Vec::new();
    for (client, camera) in clients.iter_mut().zip(cameras.iter()) {
        let d = client.recv_delta().expect("bootstrap");
        assert_eq!(d.epoch, 1);
        assert!(!d.is_empty());
        let mut canvas = d.canvas();
        d.apply(&mut canvas);
        let reference = reference_frame(&store, id, camera, &config);
        assert_eq!(canvas.pixels(), reference.pixels(), "bootstrap diverged");
        canvases.push(canvas);
    }

    // Two refining publishes; every client reassembles each epoch exactly.
    for round in 2..=3u64 {
        sim.run_photons(2_000);
        assert_eq!(store.publish(id, sim.answer_snapshot()), round);
        for ((client, canvas), camera) in clients
            .iter_mut()
            .zip(canvases.iter_mut())
            .zip(cameras.iter())
        {
            let delta = client.recv_delta().expect("publish pushes a delta");
            assert_eq!(delta.epoch, round);
            delta.apply(canvas);
            let reference = reference_frame(&store, id, camera, &config);
            assert_eq!(
                canvas.pixels(),
                reference.pixels(),
                "epoch {round}: TCP reassembly diverged from a full render"
            );
        }
    }

    for client in &clients {
        assert!(client.wire_bytes() > 0, "wire accounting never moved");
    }
    let m = service.metrics().stream;
    assert_eq!(m.wire_deltas, 9, "3 clients × (bootstrap + 2 publishes)");
    assert!(m.wire_bytes > 0);
}

/// Quantized mode over the wire: smaller payloads, error never beyond the
/// global-range quantization bound, refreshed correctly across epochs.
#[test]
fn quantized_tcp_subscriber_error_is_bounded() {
    let store = Arc::new(AnswerStore::new());
    let config = ServeConfig {
        render_threads: 2,
        tile_size: 16,
        ..ServeConfig::default()
    };
    let service = Arc::new(RenderService::start(Arc::clone(&store), config));
    let server = StreamServer::serve(Arc::clone(&service)).expect("bind loopback");

    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 32,
            ..Default::default()
        },
    );
    sim.run_photons(2_000);
    let id = store.insert("cornell-lossy", sim.scene().clone(), sim.answer_snapshot());
    let camera = cornell_camera(0.4, 48, 36);
    let mut client = StreamClient::connect(server.local_addr(), id, camera, WireMode::Quantized)
        .expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");

    let d = client.recv_delta().expect("bootstrap");
    let mut canvas = d.canvas();
    d.apply(&mut canvas);
    sim.run_photons(2_000);
    store.publish(id, sim.answer_snapshot());
    let d = client.recv_delta().expect("refinement");
    d.apply(&mut canvas);

    // Per-tile quantization bounds are at most the global-range bound, so
    // every pixel must sit within it — across epochs, since stale pixels
    // were within bound of reference values that have not changed since.
    let reference = reference_frame(&store, id, &camera, &config);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in reference.pixels() {
        for v in [p.r, p.g, p.b] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let bound = photon_core::wire::quantization_error_bound(lo, hi);
    assert!(bound > 0.0, "a lit scene must span a range");
    let mut worst = 0.0f64;
    for (got, want) in canvas.pixels().iter().zip(reference.pixels()) {
        for (g, w) in [got.r, got.g, got.b]
            .into_iter()
            .zip([want.r, want.g, want.b])
        {
            worst = worst.max((g - w).abs());
        }
    }
    assert!(
        worst <= bound + 1e-12,
        "quantized error {worst} beyond the advertised bound {bound}"
    );
    assert!(worst > 0.0, "quantized mode is actually lossy");
}

/// A server refusal (unknown scene) reaches the client as a readable
/// error frame instead of a hang or a silent close.
#[test]
fn unknown_scene_is_refused_over_the_wire() {
    let store = Arc::new(AnswerStore::new());
    let service = Arc::new(RenderService::start(
        Arc::clone(&store),
        ServeConfig::default(),
    ));
    let server = StreamServer::serve(Arc::clone(&service)).expect("bind loopback");
    let camera = cornell_camera(0.0, 16, 12);
    let mut client =
        StreamClient::connect(server.local_addr(), SceneId(7), camera, WireMode::Lossless)
            .expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let err = client.recv_delta().expect_err("no such scene");
    assert!(
        err.to_string().contains("unknown"),
        "refusal should carry the reason, got: {err}"
    );
}

/// The slow-consumer acceptance, end to end over TCP: a client that stops
/// reading backs the socket up, the per-connection writer blocks, the
/// subscription's window fills, and the dispatcher coalesces — the squash
/// counter moves, the stalled client later receives *fewer* deltas than
/// epochs published yet reassembles the final epoch bit-identically, and
/// a fast consumer of the same scene sees every epoch undisturbed.
#[test]
fn stalled_tcp_consumer_is_coalesced_fast_one_unaffected() {
    let store = Arc::new(AnswerStore::new());
    let config = ServeConfig {
        render_threads: 2,
        tile_size: 16,
        stream_window: 1,
        housekeep_ms: 50,
        ..ServeConfig::default()
    };
    let service = Arc::new(RenderService::start(Arc::clone(&store), config));
    let server = StreamServer::serve(Arc::clone(&service)).expect("bind loopback");

    // Two answers with equal photon counts but different seeds: publishes
    // alternate between them, so every epoch changes pixels without
    // paying for more solving.
    let mut sim_a = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 41,
            ..Default::default()
        },
    );
    sim_a.run_photons(2_000);
    let answer_a = sim_a.answer_snapshot();
    let mut sim_b = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 42,
            ..Default::default()
        },
    );
    sim_b.run_photons(2_000);
    let answer_b = sim_b.answer_snapshot();
    let id = store.insert("cornell-stall", sim_a.scene().clone(), answer_a.clone());

    // The stalled client views a larger frame so its deltas fill the
    // socket buffers quickly; the fast client keeps draining.
    let fast_camera = cornell_camera(0.0, 48, 36);
    let stalled_camera = cornell_camera(0.9, 128, 96);
    let mut fast = StreamClient::connect(server.local_addr(), id, fast_camera, WireMode::Lossless)
        .expect("connect fast");
    fast.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut stalled =
        StreamClient::connect(server.local_addr(), id, stalled_camera, WireMode::Lossless)
            .expect("connect stalled");
    stalled
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");

    let d = fast.recv_delta().expect("fast bootstrap");
    assert_eq!(d.epoch, 1);
    let mut fast_canvas = d.canvas();
    d.apply(&mut fast_canvas);
    let d = stalled.recv_delta().expect("stalled bootstrap");
    let mut stalled_canvas = d.canvas();
    d.apply(&mut stalled_canvas);
    // ... and from here the stalled client stops reading entirely.

    // Publish until the dispatcher demonstrably coalesced for the stalled
    // subscriber. The fast client is drained after every publish, so each
    // epoch is processed separately and the fast stream sees all of them.
    let mut final_epoch = 0u64;
    for round in 2..=300u64 {
        let snapshot = if round % 2 == 0 {
            answer_b.clone()
        } else {
            answer_a.clone()
        };
        assert_eq!(store.publish(id, snapshot), round);
        let delta = fast.recv_delta().expect("fast client keeps streaming");
        assert_eq!(delta.epoch, round, "fast consumer must see every epoch");
        delta.apply(&mut fast_canvas);
        if service.metrics().stream.deltas_squashed > 0 {
            final_epoch = round;
            break;
        }
    }
    let m = service.metrics().stream;
    assert!(
        final_epoch > 0,
        "stalled TCP consumer never triggered coalescing: {m:?}"
    );
    assert!(m.lag_events >= 1, "lag transition not observed");

    // Fast consumer: bit-identical to a full render of the final epoch.
    let reference = reference_frame(&store, id, &fast_camera, &config);
    assert_eq!(
        fast_canvas.pixels(),
        reference.pixels(),
        "fast consumer diverged while its neighbor stalled"
    );

    // Unstall: the backlog drains as the already-encoded window plus the
    // flushed squash — strictly fewer deltas than epochs published — and
    // reassembly still lands exactly on the final epoch.
    let mut received = 0u64;
    loop {
        let delta = stalled.recv_delta().expect("backlog drains after unstall");
        received += 1;
        let epoch = delta.epoch;
        delta.apply(&mut stalled_canvas);
        if epoch >= final_epoch {
            break;
        }
        assert!(received < 10_000, "runaway backlog");
    }
    assert!(
        received < final_epoch,
        "coalescing must deliver fewer deltas ({received}) than epochs ({final_epoch})"
    );
    let reference = reference_frame(&store, id, &stalled_camera, &config);
    assert_eq!(
        stalled_canvas.pixels(),
        reference.pixels(),
        "stalled consumer's reassembly diverged after coalescing"
    );
}
