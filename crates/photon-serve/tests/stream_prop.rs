//! Property tests for the streaming layer's two lossy-looking corners
//! that must not be lossy in the wrong way: squashing a run of deltas
//! (slow-consumer coalescing) must reassemble bit-identically to applying
//! the run in order, over arbitrary tile layouts; and the quantized wire
//! mode's error must be bounded by the advertised per-tile bound and be
//! fully deterministic (same input → same bytes → same pixels).

use photon_core::view::Tile;
use photon_core::wire::{self, WireMode};
use photon_math::Rgb;
use photon_serve::FrameDelta;
use proptest::prelude::*;

/// Any non-degenerate rectangle inside a `w × h` frame — tiles from the
/// real diff path are grid-aligned, but squash must not rely on that.
fn arb_tile(w: usize, h: usize) -> impl Strategy<Value = Tile> {
    (0..w, 0..h).prop_flat_map(move |(x0, y0)| {
        ((x0 + 1)..(w + 1), (y0 + 1)..(h + 1)).prop_map(move |(x1, y1)| Tile { x0, y0, x1, y1 })
    })
}

/// A tile plus a full pixel buffer ramped from a random base color, so
/// overlapping tiles disagree and ordering mistakes change pixels.
fn arb_tile_run(w: usize, h: usize) -> impl Strategy<Value = (Tile, Vec<Rgb>)> {
    (arb_tile(w, h), -4.0f64..4.0, -0.5f64..0.5).prop_map(|(tile, base, slope)| {
        let buf = (0..tile.pixel_count())
            .map(|i| {
                let v = base + slope * i as f64;
                Rgb::new(v, v * 0.5 - 1.0, -v)
            })
            .collect();
        (tile, buf)
    })
}

/// A run of deltas over one frame: arbitrary (overlapping, repeated,
/// possibly empty) tile layouts, epochs increasing along the run.
fn arb_run() -> impl Strategy<Value = Vec<FrameDelta>> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::collection::vec(arb_tile_run(w, h), 0..6), 1..6)
            .prop_map(move |runs| {
                runs.into_iter()
                    .enumerate()
                    .map(|(i, tiles)| FrameDelta {
                        epoch: i as u64,
                        width: w,
                        height: h,
                        tiles,
                    })
                    .collect()
            })
    })
}

/// One delta with at least one tile — the quantized codec's unit of work.
fn arb_delta() -> impl Strategy<Value = FrameDelta> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(arb_tile_run(w, h), 1..6).prop_map(move |tiles| FrameDelta {
            epoch: 9,
            width: w,
            height: h,
            tiles,
        })
    })
}

/// Min/max of one channel across a tile's pixels — the bounds the codec
/// quantizes against.
fn channel_range(buf: &[Rgb], ch: usize) -> (f64, f64) {
    let vals = buf.iter().map(|p| [p.r, p.g, p.b][ch]);
    let lo = vals.clone().fold(f64::INFINITY, f64::min);
    let hi = vals.fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Squashing any contiguous run and applying the result once is
    /// bit-identical to applying each delta in order — for arbitrary,
    /// overlapping, repeated tile layouts.
    #[test]
    fn squash_matches_in_order_application(run in arb_run()) {
        let squashed = FrameDelta::squash(&run);
        prop_assert_eq!(squashed.epoch, run.last().unwrap().epoch);
        let mut in_order = run[0].canvas();
        for delta in &run {
            delta.apply(&mut in_order);
        }
        let mut at_once = squashed.canvas();
        squashed.apply(&mut at_once);
        prop_assert_eq!(at_once.pixels(), in_order.pixels());
    }

    /// The lossless wire mode is exactly that: decode returns the input
    /// tiles bit-for-bit, whatever the layout and pixel values.
    #[test]
    fn lossless_wire_roundtrip_is_bit_identical(delta in arb_delta()) {
        let (back, mode) = FrameDelta::decode(&delta.encode(WireMode::Lossless)).unwrap();
        prop_assert_eq!(mode, WireMode::Lossless);
        prop_assert_eq!(back.epoch, delta.epoch);
        prop_assert_eq!((back.width, back.height), (delta.width, delta.height));
        prop_assert_eq!(back.tiles, delta.tiles);
    }

    /// Quantized mode: the encoding is deterministic (byte-stable), the
    /// roundtrip error never exceeds the advertised per-tile per-channel
    /// bound, and dequantized values are a fixed point — a second
    /// encode/decode changes nothing.
    #[test]
    fn quantized_roundtrip_error_is_bounded_and_deterministic(delta in arb_delta()) {
        let bytes = delta.encode(WireMode::Quantized);
        prop_assert_eq!(&bytes, &delta.encode(WireMode::Quantized), "encode must be deterministic");
        let (lossy, mode) = FrameDelta::decode(&bytes).unwrap();
        prop_assert_eq!(mode, WireMode::Quantized);
        prop_assert_eq!(lossy.tiles.len(), delta.tiles.len());
        for ((tile, orig), (lossy_tile, deq)) in delta.tiles.iter().zip(lossy.tiles.iter()) {
            prop_assert_eq!(tile, lossy_tile);
            for ch in 0..3 {
                let (lo, hi) = channel_range(orig, ch);
                let bound = wire::quantization_error_bound(lo, hi);
                for (o, d) in orig.iter().zip(deq.iter()) {
                    let (o, d) = ([o.r, o.g, o.b][ch], [d.r, d.g, d.b][ch]);
                    prop_assert!(
                        (o - d).abs() <= bound + 1e-12,
                        "channel {} error {} over bound {}", ch, (o - d).abs(), bound
                    );
                }
            }
        }
        let (twice, _) = FrameDelta::decode(&lossy.encode(WireMode::Quantized)).unwrap();
        prop_assert_eq!(twice.tiles, lossy.tiles, "dequantized values must be a fixed point");
    }
}
