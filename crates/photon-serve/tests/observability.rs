//! Observability acceptance: the flight recorder captures the full
//! solve→publish→render→delta→checkpoint lifecycle in causal order,
//! `ServiceMetrics` stays memory-bounded after a million recorded
//! requests, concurrent snapshots neither deadlock nor tear, and a live
//! pool's exporter serves scrapeable text and JSON.

use photon_core::obs::ObsKind;
use photon_core::{Camera, SPEED_TRACE_CAP};
use photon_math::Vec3;
use photon_scenes::{cornell_box, TestScene};
use photon_serve::metrics::ServiceMetrics;
use photon_serve::{
    AnswerStore, BackendChoice, ObsServer, RenderRequest, RenderService, RequestOutcome,
    ServeConfig, SolveRequest, SolverMetricsSnapshot, SolverPool, SolverStatsSource, StreamRequest,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn distant_cornell_camera() -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: Vec3::new(v.eye.x, v.eye.y, -15.0),
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 48,
        height: 36,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        render_threads: 2,
        tile_size: 16,
        ..ServeConfig::default()
    }
}

/// The tentpole acceptance: one shared hub sees every tier. A budgeted
/// solve job is driven through submit → slice → publish → quota-park →
/// checkpoint → finish, with a subscriber streaming deltas and a render
/// served off the result; a second job resumes the frozen checkpoint.
/// The recorder must hold the whole story in causal order.
#[test]
fn flight_recorder_captures_the_lifecycle_in_order() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), serve_config());
    let camera = distant_cornell_camera();

    // Budget = one batch: the job publishes epoch 1 then parks on quota,
    // which is the deterministic window to freeze a checkpoint.
    pool.set_tenant_budget("obs", 2_000);
    let mut request = SolveRequest::new("cornell-obs", cornell_box());
    request.backend = BackendChoice::Serial;
    request.seed = 33;
    request.batch_size = 2_000;
    request.target_photons = 4_000;
    request.tenant = "obs".into();

    let job = pool.submit(request);
    let stream = service
        .subscribe(StreamRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(60))
        .expect("bootstrap delta");

    // Epoch 1 lands, then the quota parks the job.
    job.wait_epoch(1, Duration::from_secs(120))
        .expect("first publish");
    stream
        .recv_timeout(Duration::from_secs(60))
        .expect("epoch-1 delta");
    let deadline = Instant::now() + Duration::from_secs(60);
    while pool.metrics().quota_blocked == 0 {
        assert!(Instant::now() < deadline, "job never quota-parked");
        std::thread::sleep(Duration::from_millis(5));
    }

    let ck = job.checkpoint().expect("parked job freezes a checkpoint");
    assert!(ck.emitted() >= 2_000);

    // Top up → the job finishes; then serve a view off the final answer.
    pool.add_tenant_budget("obs", 2_000);
    let done = job.wait_done(Duration::from_secs(120)).expect("converged");
    assert!(done.emitted >= 4_000);
    stream
        .recv_timeout(Duration::from_secs(60))
        .expect("epoch-2 delta");
    service
        .render_blocking(RenderRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("served");

    // Resume the frozen checkpoint as a second job on the same pool.
    let mut resumed = SolveRequest::resume("cornell-obs-resumed", cornell_box(), ck);
    resumed.backend = BackendChoice::Serial;
    resumed.batch_size = 2_000;
    resumed.target_photons = 4_000;
    let job2 = pool.submit(resumed);
    job2.wait_done(Duration::from_secs(120))
        .expect("resumed job");

    drop(stream); // emits SubscriberDropped

    let hub = store.obs();
    let recorder = hub.recorder();
    let events = recorder.events();
    assert!(recorder.dropped() == 0, "capacity 4096 must hold this run");

    // Sequence numbers and timestamps are monotone.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must be strictly monotone");
        assert!(
            pair[0].ts_us <= pair[1].ts_us,
            "time must not run backwards"
        );
    }

    // Every lifecycle edge fired at least once.
    let first = |kind: ObsKind| -> usize {
        events
            .iter()
            .position(|e| e.kind == kind)
            .unwrap_or_else(|| panic!("no {} event recorded", kind.name()))
    };
    let last = |kind: ObsKind| -> usize { events.iter().rposition(|e| e.kind == kind).unwrap() };

    // The causal chain of the first job, in order: submitted before its
    // first slice, stepped before its first publish, published before it
    // finished; the quota park happened between grant and done.
    let submitted = first(ObsKind::JobSubmitted);
    let granted = first(ObsKind::SliceGranted);
    let stepped = first(ObsKind::BatchStepped);
    // Epoch 0 is announced at registration, before any solving — the
    // first *refinement* publish is the one the solve chain produces.
    let published = events
        .iter()
        .position(|e| e.kind == ObsKind::EpochPublished && e.ctx.payload >= 1)
        .expect("a refinement publish was recorded");
    let parked = first(ObsKind::SliceParked);
    let frozen = first(ObsKind::CheckpointFrozen);
    let done = first(ObsKind::JobDone);
    assert!(submitted < granted, "submit precedes the first slice grant");
    assert!(granted < stepped, "grant precedes the first step");
    assert!(stepped < published, "a step precedes the first publish");
    assert!(published < done, "publishes precede completion");
    assert!(granted < parked && parked < done, "quota park is mid-job");
    assert!(parked < frozen, "checkpoint frozen while parked");
    assert!(
        frozen < first(ObsKind::CheckpointRestored),
        "freeze before restore"
    );

    // The serve/stream tiers reacted to the publishes: a delta was pushed
    // after the first publish, a request served after it, and the dropped
    // subscription was recorded.
    assert!(
        last(ObsKind::DeltaPushed) > published,
        "publish pushed a delta"
    );
    assert!(
        last(ObsKind::RequestServed) > published,
        "render served post-publish"
    );
    assert!(first(ObsKind::SubscriberDropped) > first(ObsKind::DeltaPushed));

    // The park reason payload distinguishes quota exhaustion (1).
    assert!(
        events
            .iter()
            .any(|e| e.kind == ObsKind::SliceParked && e.ctx.payload == 1),
        "quota park must carry payload 1"
    );

    // Filtering by the first job's id yields its chain: submitted first,
    // done last, with at least one grant and step between.
    let job_events = recorder.filtered(|e| e.ctx.job == Some(job.job_id().0));
    assert_eq!(job_events.first().unwrap().kind, ObsKind::JobSubmitted);
    assert_eq!(job_events.last().unwrap().kind, ObsKind::JobDone);
    assert!(job_events.iter().any(|e| e.kind == ObsKind::SliceGranted));
    assert!(job_events.iter().any(|e| e.kind == ObsKind::BatchStepped));

    // Tenant attribution survives into the recorder.
    assert!(
        job_events
            .iter()
            .any(|e| e.ctx.tenant.as_deref() == Some("obs")),
        "the job's tenant tag must appear in its events"
    );

    // Stage timings accumulated across the tiers the run exercised.
    let stages = store.obs().stage_snapshot();
    assert!(stages.get(photon_core::Stage::SolveSlice).count() >= 2);
    assert!(stages.get(photon_core::Stage::Render).count() >= 1);
    assert!(stages.get(photon_core::Stage::Diff).count() >= 1);
    assert!(stages.get(photon_core::Stage::CheckpointFreeze).count() >= 1);
    assert!(stages.get(photon_core::Stage::CheckpointRestore).count() >= 1);

    pool.shutdown();
}

/// The memory-bound acceptance: a million recorded requests (and a
/// hundred thousand batch samples) leave every collection at its fixed
/// cap — 65 histogram buckets, ≤ `SPEED_TRACE_CAP` speed samples — while
/// the exact counters still account for every single event.
#[test]
fn metrics_stay_bounded_after_a_million_requests() {
    let metrics = ServiceMetrics::new();
    let total: u64 = 1_000_000;
    for i in 0..total {
        // Latencies sweep 0..~16ms so many buckets populate.
        let outcome = match i % 3 {
            0 => RequestOutcome::Rendered,
            1 => RequestOutcome::CacheHit,
            _ => RequestOutcome::Coalesced,
        };
        metrics.record_request(Duration::from_micros(i % 16_384), outcome);
    }
    for i in 0..100_000u64 {
        metrics.record_batch(1 + i % 3, 0.0005);
    }

    let snap = metrics.snapshot();
    assert_eq!(snap.completed, total, "every request counted");
    assert_eq!(snap.latency.count, total);
    assert_eq!(
        snap.rendered + snap.cache_hits + snap.coalesced,
        total,
        "outcome counters account for every request"
    );

    // The histogram is a fixed array — by construction it cannot grow —
    // and its statistics still describe the stream.
    assert_eq!(
        snap.latency_hist.buckets.len(),
        photon_core::obs::HISTOGRAM_BUCKETS
    );
    assert!(snap.latency.p50_ms > 0.0 && snap.latency.p50_ms <= snap.latency.p99_ms);
    assert!(snap.latency.p99_ms <= snap.latency.max_ms);
    assert!((snap.latency.max_ms - 16.383).abs() < 1e-9, "max is exact");

    // The speed trace coalesced instead of growing: bounded length, exact
    // totals.
    assert!(
        snap.speed.samples().len() <= SPEED_TRACE_CAP,
        "speed trace exceeded its cap: {}",
        snap.speed.samples().len()
    );
    let expected: u64 = (0..100_000u64).map(|i| 1 + i % 3).sum();
    assert_eq!(snap.speed.total_photons(), expected);
}

/// A stats source that re-enters the metrics sink from inside
/// `solver_snapshot` — the exact shape that deadlocked when `snapshot`
/// held the service lock across the solver call.
struct ReentrantSource {
    metrics: std::sync::Mutex<Option<Arc<ServiceMetrics>>>,
    calls: AtomicU64,
}

impl SolverStatsSource for ReentrantSource {
    fn solver_snapshot(&self) -> SolverMetricsSnapshot {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = self.metrics.lock().unwrap().as_ref() {
            // Both of these take the service lock `snapshot` used to hold.
            metrics.record_request(Duration::from_micros(7), RequestOutcome::CacheHit);
            metrics.record_cache(1, 0);
        }
        SolverMetricsSnapshot::default()
    }
}

/// Regression: `snapshot` must not hold its lock while consulting the
/// solver source, and concurrent `record_*` traffic must never tear the
/// stream tier — every snapshot sees delta/tile/byte counters in exact
/// lockstep.
#[test]
fn concurrent_snapshots_never_deadlock_or_tear() {
    let metrics = Arc::new(ServiceMetrics::new());
    let source = Arc::new(ReentrantSource {
        metrics: std::sync::Mutex::new(Some(Arc::clone(&metrics))),
        calls: AtomicU64::new(0),
    });
    metrics.attach_solver(Arc::clone(&source) as Arc<dyn SolverStatsSource>);

    // Writers hammer the lock in lockstep units: every delta carries
    // exactly 1 tile, 100 tile-bytes, 200 full-frame-bytes, so any torn
    // read breaks an exact ratio.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if w == 0 {
                        metrics.record_delta(1, 100, 200);
                        metrics.record_subscribers(1);
                    } else {
                        metrics.record_request(Duration::from_micros(42), RequestOutcome::Rendered);
                        metrics.record_batch(1, 0.0001);
                    }
                }
            })
        })
        .collect();

    // Snapshots run on a watchdog thread: if the old double-lock deadlock
    // regresses, the channel times out instead of hanging the test binary.
    let (tx, rx) = mpsc::channel();
    let snapper = {
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || {
            for _ in 0..500 {
                let snap = metrics.snapshot();
                assert_eq!(
                    snap.stream.tile_bytes,
                    snap.stream.deltas * 100,
                    "stream tier tore: tile_bytes out of lockstep"
                );
                assert_eq!(
                    snap.stream.full_frame_bytes,
                    snap.stream.deltas * 200,
                    "stream tier tore: full_frame_bytes out of lockstep"
                );
                assert_eq!(snap.stream.tiles, snap.stream.deltas);
            }
            tx.send(()).unwrap();
        })
    };
    rx.recv_timeout(Duration::from_secs(60))
        .expect("snapshot deadlocked against concurrent record_* traffic");
    snapper.join().unwrap();
    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(source.calls.load(Ordering::Relaxed), 500);

    // The reentrant writes landed — proof the lock was free during the
    // solver call.
    let snap = metrics.snapshot();
    assert!(snap.cache_hits >= 500);
    *source.metrics.lock().unwrap() = None; // break the Arc cycle
}

/// The exporter acceptance: a live pool + service, scraped over TCP,
/// serves a text exposition with nonzero solve, render, and stream
/// series, and a versioned JSON dump carrying the flight-recorder tail.
#[test]
fn live_pool_exporter_serves_text_and_json() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), serve_config());
    service.attach_solver(pool.stats_source());
    let camera = distant_cornell_camera();

    let mut request = SolveRequest::new("cornell-export", cornell_box());
    request.backend = BackendChoice::Serial;
    request.seed = 91;
    request.batch_size = 2_000;
    request.target_photons = 2_000;
    let job = pool.submit(request);
    let stream = service
        .subscribe(StreamRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(60))
        .expect("bootstrap delta");
    job.wait_done(Duration::from_secs(120)).expect("solved");
    stream
        .recv_timeout(Duration::from_secs(60))
        .expect("epoch-1 delta");
    service
        .render_blocking(RenderRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("served");

    let server = ObsServer::serve(service.exporter()).expect("bind");
    let addr = server.local_addr();
    let fetch = |path: &str| -> String {
        use std::io::{Read, Write};
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).expect("read");
        out
    };

    let text = fetch("/metrics");
    assert!(text.starts_with("HTTP/1.1 200 OK"));
    let body = text.split("\r\n\r\n").nth(1).expect("body");
    let series_value = |name_and_labels: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(name_and_labels))
            .unwrap_or_else(|| panic!("series {name_and_labels} missing"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Solve tier: the finished job and its photons are visible.
    assert!(series_value("photon_solver_done_total") >= 1.0);
    assert!(series_value("photon_solve_photons_total") >= 2_000.0);
    // Render tier: the served request (whatever its outcome — the
    // subscriber's delta render may have warmed the cache) and its
    // latency histogram.
    let served = series_value("photon_requests_total{outcome=\"rendered\"}")
        + series_value("photon_requests_total{outcome=\"cache_hit\"}")
        + series_value("photon_requests_total{outcome=\"coalesced\"}");
    assert!(served >= 1.0);
    assert!(series_value("photon_request_latency_us_count") >= 1.0);
    // Stream tier: deltas were pushed to a live subscriber.
    assert!(series_value("photon_stream_deltas_total") >= 2.0);
    assert!(series_value("photon_events_recorded_total") > 0.0);

    let json = fetch("/metrics.json");
    let body = json.split("\r\n\r\n").nth(1).expect("json body");
    assert!(body.starts_with("{\"version\":1,"));
    assert!(body.contains("\"kind\":\"epoch-published\""));
    assert!(body.contains("\"kind\":\"job-done\""));
    assert!(body.contains("\"stages\":{"));

    drop(server);
    pool.shutdown();
}
