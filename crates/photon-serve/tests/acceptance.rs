//! End-to-end acceptance of the serving layer: a multi-scene camera sweep
//! through the request queue, exercised the way the bench drives it.

use photon_core::{Camera, SimConfig, Simulator};
use photon_scenes::TestScene;
use photon_serve::{AnswerStore, RenderRequest, RenderService, SceneId, ServeConfig};
use std::sync::Arc;

fn simulate(kind: TestScene, photons: u64, seed: u64) -> (AnswerStoreEntry, TestScene) {
    let mut sim = Simulator::new(
        kind.build(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    let answer = sim.answer_snapshot();
    ((sim.scene().clone(), answer), kind)
}

type AnswerStoreEntry = (photon_geom::Scene, photon_core::Answer);

/// An orbit of distinct viewpoints around a scene's recommended view.
fn orbit(kind: TestScene, count: usize) -> Vec<Camera> {
    (0..count)
        .map(|i| {
            let v = kind.view().orbited(i as f64 / count as f64, 1.0);
            Camera {
                eye: v.eye,
                target: v.target,
                up: v.up,
                vfov_deg: v.vfov_deg,
                width: 32,
                height: 24,
            }
        })
        .collect()
}

/// The ISSUE's acceptance bar: a batch of ≥ 64 distinct cameras across
/// ≥ 2 scenes flows through the queue and every response is a correctly
/// sized, scene-dependent image.
#[test]
fn sixty_four_cameras_across_two_scenes_through_the_queue() {
    let store = Arc::new(AnswerStore::new());
    let mut ids: Vec<SceneId> = Vec::new();
    for (i, kind) in [TestScene::CornellBox, TestScene::HarpsichordRoom]
        .into_iter()
        .enumerate()
    {
        let ((scene, answer), kind) = simulate(kind, 2_500, 40 + i as u64);
        ids.push(store.insert(kind.name(), scene, answer));
    }

    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    let mut requests = Vec::new();
    for (idx, &id) in ids.iter().enumerate() {
        for camera in orbit([TestScene::CornellBox, TestScene::HarpsichordRoom][idx], 36) {
            requests.push(RenderRequest {
                scene_id: id,
                camera,
            });
        }
    }
    assert!(
        requests.len() >= 64,
        "need ≥ 64 cameras, built {}",
        requests.len()
    );

    let responses = service.render_batch(requests.clone());
    assert_eq!(responses.len(), 72);
    let mut lit = 0usize;
    for (req, res) in requests.iter().zip(&responses) {
        let res = res.as_ref().expect("request served");
        assert_eq!(res.image.width(), req.camera.width);
        assert_eq!(res.image.height(), req.camera.height);
        if res.image.mean_luminance() > 0.0 {
            lit += 1;
        }
    }
    // Orbiting cameras sometimes stare through a wall from outside, but the
    // bulk of the sweep must see lit geometry.
    assert!(lit > 36, "only {lit}/72 views saw anything");

    let m = service.metrics();
    assert_eq!(m.completed, 72);
    assert_eq!(m.rendered + m.cache_hits + m.coalesced, 72);
    assert!(m.rendered >= 2, "both scenes must have rendered something");
    assert!(m.batches >= 1);
    assert!(m.latency.count == 72 && m.latency.p99_ms >= m.latency.p50_ms);

    // Distinct viewpoints produce distinct images (spot-check two orbits).
    let a = responses[0].as_ref().unwrap();
    let b = responses[9].as_ref().unwrap();
    assert!(
        a.image.rms_error(&b.image) > 0.0,
        "distinct cameras rendered identically"
    );

    // Same sweep again: with the cache warm, nothing re-renders.
    let again = service.render_batch(requests);
    assert!(again.iter().all(|r| r.is_ok()));
    let m2 = service.metrics();
    assert_eq!(m2.completed, 144);
    assert_eq!(m2.rendered, m.rendered, "warm sweep re-rendered views");
    assert!(m2.cache_hits >= m.cache_hits + 72 - m.rendered);
}

/// Concurrent clients hammering the same service from multiple threads.
#[test]
fn concurrent_clients_share_one_service() {
    let ((scene, answer), kind) = simulate(TestScene::CornellBox, 2_000, 77);
    let store = Arc::new(AnswerStore::new());
    let id = store.insert(kind.name(), scene, answer);
    let service = RenderService::start(store, ServeConfig::default());

    let cams = orbit(TestScene::CornellBox, 8);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let service = &service;
            let cams = &cams;
            scope.spawn(move || {
                for i in 0..8 {
                    let camera = cams[(t + i) % cams.len()];
                    let res = service
                        .render_blocking(RenderRequest {
                            scene_id: id,
                            camera,
                        })
                        .expect("served");
                    assert_eq!(res.image.width(), 32);
                }
            });
        }
    });
    let m = service.metrics();
    assert_eq!(m.completed, 32);
    // 8 distinct views, 32 requests: at least 24 answered without a render.
    assert!(
        m.rendered <= 8,
        "rendered {} of 8 distinct views",
        m.rendered
    );
    assert!(m.qps > 0.0);
}
