//! End-to-end solve→store→render pipeline acceptance.
//!
//! The ISSUE's bar: submit a scene with **no** pre-stored answer, receive a
//! rendered image, and observe at least two solve epochs with the later
//! epoch's image served from the refreshed — not stale-cached — answer.

use photon_core::{Camera, SimConfig, Simulator};
use photon_math::Vec3;
use photon_scenes::{cornell_box, TestScene};
use photon_serve::{
    AnswerStore, BackendChoice, RenderRequest, RenderService, RequestOutcome, ServeConfig,
    SolveRequest, SolverPool,
};
use std::sync::Arc;
use std::time::Duration;

fn cornell_camera() -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 40,
        height: 30,
    }
}

/// The acceptance test: nothing pre-stored, a scene goes in, images come
/// out, and refinement visibly replaces earlier epochs.
#[test]
fn scene_in_images_out_with_refining_epochs() {
    let store = Arc::new(AnswerStore::new());
    assert!(store.is_empty(), "no pre-stored answers anywhere");
    let solver = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());

    let mut request = SolveRequest::new("cornell-progressive", cornell_box());
    request.backend = BackendChoice::Threaded { threads: 2 };
    request.seed = 1212;
    request.batch_size = 2_000;
    request.target_photons = 20_000; // 10 epochs
    let job = solver.submit(request);
    let req = RenderRequest {
        scene_id: job.scene_id(),
        camera: cornell_camera(),
    };

    // Render the same view once per published epoch. The solver runs
    // freely, so each render observes *some* epoch ≥ the one announced —
    // the assertions below hold under any scheduling.
    let mut views = Vec::new();
    while let Some(progress) = job.next_progress(Duration::from_secs(300)) {
        let view = service.render_blocking(req).expect("served mid-solve");
        assert!(view.epoch >= progress.epoch, "render saw a stale entry");
        assert_eq!(view.image.width(), 40);
        assert!(view.image.mean_luminance() > 0.0, "epoch ≥ 1 is lit");
        views.push(view);
        if progress.done {
            assert_eq!(progress.emitted, 20_000);
        }
    }
    assert_eq!(views.len(), 10, "one render per published epoch");
    // Pathological-scheduling fallback: if the whole solve outran even our
    // first render (every view saw the final epoch), force one more epoch
    // so the refresh behavior is still observed deterministically.
    let distinct: std::collections::BTreeSet<u64> = views.iter().map(|v| v.epoch).collect();
    if distinct.len() < 2 {
        let entry = store.get(req.scene_id).unwrap();
        store.publish(req.scene_id, (*entry.answer).clone());
        views.push(service.render_blocking(req).expect("served"));
    }
    let early = &views[0];
    let late = views.last().unwrap();
    assert!(late.epoch >= 10, "final render serves the converged answer");

    // At least two distinct solve epochs were observed, and every render
    // that first saw a fresher epoch actually re-rendered — the
    // epoch-keyed cache cannot serve an image for an epoch it has never
    // rendered, so refinement is never answered stale.
    let distinct: std::collections::BTreeSet<u64> = views.iter().map(|v| v.epoch).collect();
    assert!(
        distinct.len() >= 2,
        "observed epochs {distinct:?}: need at least two"
    );
    for pair in views.windows(2) {
        assert!(pair[1].epoch >= pair[0].epoch, "epochs regressed");
        if pair[1].epoch > pair[0].epoch {
            assert_eq!(
                pair[1].outcome,
                RequestOutcome::Rendered,
                "first view of a fresher epoch must re-render, not hit the stale cache"
            );
        }
    }
    if early.epoch < 10 {
        assert!(
            late.image.rms_error(&early.image) > 0.0,
            "more photons must change the served image"
        );
    }

    // The refined answer *is* the serial reference solution (threaded
    // deterministic backend), so the final image equals a from-scratch
    // offline render of that solution.
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 1212,
            ..Default::default()
        },
    );
    sim.run_photons(20_000);
    let offline_store = Arc::new(AnswerStore::new());
    let offline_id = offline_store.insert("offline", sim.scene().clone(), sim.answer_snapshot());
    let offline = RenderService::start(offline_store, ServeConfig::default());
    let reference = offline
        .render_blocking(RenderRequest {
            scene_id: offline_id,
            camera: cornell_camera(),
        })
        .expect("offline render");
    assert_eq!(
        late.image.pixels(),
        reference.image.pixels(),
        "pipeline image must equal the offline render of the same solution"
    );

    // Once no fresher epoch appears, the cache serves repeats again.
    let repeat = service.render_blocking(req).expect("served repeat");
    assert!(repeat.from_cache(), "same epoch, same view: cache hit");
    assert_eq!(repeat.epoch, late.epoch);
}

/// A scene with no published answer yet still renders (black) instead of
/// erroring or hanging — clients can connect before the solve starts.
#[test]
fn epoch_zero_renders_black_not_an_error() {
    let store = Arc::new(AnswerStore::new());
    let id = store.register("unsolved", cornell_box());
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    let r = service
        .render_blocking(RenderRequest {
            scene_id: id,
            camera: cornell_camera(),
        })
        .expect("epoch 0 must serve");
    assert_eq!(r.epoch, 0);
    assert_eq!(r.image.mean_luminance(), 0.0, "nothing solved, nothing lit");
}

/// Concurrent clients polling the same camera while the solve runs: every
/// response is well-formed, epochs only move forward, and the final epoch
/// is eventually observed.
#[test]
fn polling_clients_see_monotone_epochs_during_the_solve() {
    let store = Arc::new(AnswerStore::new());
    let solver = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    let mut request = SolveRequest::new("cornell-poll", cornell_box());
    request.backend = BackendChoice::Serial;
    request.seed = 77;
    request.batch_size = 1_000;
    request.target_photons = 8_000;
    let job = solver.submit(request);
    let camera = Camera {
        eye: Vec3::new(2.78, 2.73, -7.5),
        target: Vec3::new(2.78, 2.73, 2.8),
        up: Vec3::Y,
        vfov_deg: 40.0,
        width: 24,
        height: 18,
    };
    let req = RenderRequest {
        scene_id: job.scene_id(),
        camera,
    };

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let service = &service;
            scope.spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..12 {
                    let r = service.render_blocking(req).expect("served");
                    assert!(
                        r.epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {}",
                        r.epoch
                    );
                    last_epoch = r.epoch;
                    assert_eq!(r.image.width(), 24);
                }
            });
        }
    });
    job.wait_done(Duration::from_secs(120)).expect("converged");
    let final_view = service.render_blocking(req).expect("served");
    assert_eq!(final_view.epoch, 8, "final epoch = target / batch");
    let m = service.metrics();
    assert_eq!(m.completed, 37);
    assert!(
        m.rendered >= 1 && m.rendered <= 9,
        "one render per epoch at most: {m:?}"
    );
}
