//! The 48-bit linear congruential generator and its exact stream splitting.

use crate::PhotonRng;

/// Modulus mask: all arithmetic is mod 2^48.
const MASK: u64 = (1u64 << 48) - 1;
/// The `drand48` multiplier.
const DRAND48_A: u64 = 0x5DEE_CE66D;
/// The `drand48` increment.
const DRAND48_C: u64 = 0xB;

/// 48-bit LCG: `x <- (a*x + c) mod 2^48`.
///
/// With the default (`drand48`) parameters the state sequence has full period
/// 2^48. Subsequence splitting for `P` processors keeps the *same* global
/// stream and hands processor `i` every `P`-th element — the leapfrog scheme
/// of the paper (ch. 5) — so parallel runs consume exactly the deviates a
/// serial run would, partitioned among ranks and never duplicated. Each
/// rank's substream has period `2^48 / P`.
#[derive(Clone, Debug, PartialEq)]
pub struct Lcg48 {
    state: u64,
    a: u64,
    c: u64,
}

impl Lcg48 {
    /// Creates the base stream from a seed.
    pub fn new(seed: u64) -> Self {
        // drand48-style seeding: seed fills the high bits, fixed 0x330E low
        // word, so small seeds still start from well-mixed states.
        let state = ((seed << 16) ^ 0x330E) & MASK;
        Lcg48 {
            state,
            a: DRAND48_A,
            c: DRAND48_C,
        }
    }

    /// Raw `(state, a, c)` parameters, for tests and checkpointing.
    pub fn params(&self) -> (u64, u64, u64) {
        (self.state, self.a, self.c)
    }

    /// Current raw state (the last value produced, or the seed state).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 48-bit value.
    #[inline]
    pub fn next_u48(&mut self) -> u64 {
        self.state = (mul_mod(self.a, self.state).wrapping_add(self.c)) & MASK;
        self.state
    }

    /// The affine map `(a_n, c_n)` equal to `n` applications of the
    /// generator step, computed by repeated squaring in `O(log n)`.
    fn compose_n(&self, mut n: u64) -> (u64, u64) {
        let (mut acc_a, mut acc_c) = (1u64, 0u64); // identity
        let (mut sq_a, mut sq_c) = (self.a, self.c);
        while n > 0 {
            if n & 1 == 1 {
                // acc <- sq ∘ acc
                acc_c = (mul_mod(sq_a, acc_c).wrapping_add(sq_c)) & MASK;
                acc_a = mul_mod(sq_a, acc_a);
            }
            // sq <- sq ∘ sq : multiplier squares, increment becomes (a+1)c.
            sq_c = (mul_mod(sq_a, sq_c).wrapping_add(sq_c)) & MASK;
            sq_a = mul_mod(sq_a, sq_a);
            n >>= 1;
        }
        (acc_a, acc_c)
    }

    /// Advances the stream by `n` steps in `O(log n)` — the block-splitting
    /// primitive, and the workhorse behind [`Lcg48::leapfrog`].
    pub fn jump_ahead(&mut self, n: u64) {
        let (an, cn) = self.compose_n(n);
        self.state = (mul_mod(an, self.state).wrapping_add(cn)) & MASK;
    }

    /// Returns block substream `index`: this stream advanced by
    /// `index * stride` steps (`self` is not advanced).
    ///
    /// Block splitting assigns work item `index` the draws
    /// `[index * stride, (index + 1) * stride)` of the base stream. Unlike
    /// [`Lcg48::leapfrog`], the partition does not depend on how many
    /// workers there are — which is what lets a photon be traced by *any*
    /// backend (serial, threaded, distributed) with exactly the same
    /// deviates. Callers pick `stride` comfortably above the worst-case
    /// draws per item so blocks never overlap.
    pub fn substream(&self, index: u64, stride: u64) -> Lcg48 {
        let mut sub = self.clone();
        // O(log n) jump even for index * stride near the 2^48 period.
        sub.jump_ahead(index.wrapping_mul(stride));
        sub
    }

    /// Returns the leapfrog substream for `rank` of `nranks`.
    ///
    /// If this generator would next produce `x_1, x_2, x_3, ...`, the
    /// returned generator produces `x_{rank+1}, x_{rank+1+P}, x_{rank+1+2P},
    /// ...` where `P = nranks`. The union of all ranks' outputs, interleaved
    /// round-robin, is exactly the base stream (tested below). `self` is not
    /// advanced.
    pub fn leapfrog(&self, rank: usize, nranks: usize) -> Lcg48 {
        assert!(nranks > 0, "need at least one rank");
        assert!(rank < nranks, "rank {rank} out of range for {nranks} ranks");
        let (ap, cp) = self.compose_n(nranks as u64);
        // First value the substream must produce: x_{rank+1}.
        let mut probe = self.clone();
        probe.jump_ahead(rank as u64 + 1);
        let first = probe.state;
        // Substream state must be the f_P-preimage of `first` so the first
        // next_u48() lands on it. a_P is odd, hence invertible mod 2^48.
        let ap_inv = inverse_pow2(ap);
        let state = mul_mod(ap_inv, first.wrapping_sub(cp) & MASK);
        Lcg48 {
            state,
            a: ap,
            c: cp,
        }
    }
}

/// `(a * b) mod 2^48` without overflow.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK as u128) as u64
}

/// Multiplicative inverse of an odd number modulo 2^48 (2-adic Newton
/// iteration; each step doubles the number of correct low bits).
fn inverse_pow2(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "only odd numbers are invertible mod 2^48");
    let mut inv = a; // correct to 3 bits
    for _ in 0..5 {
        inv = mul_mod(inv, 2u64.wrapping_sub(mul_mod(a, inv)) & MASK);
    }
    inv & MASK
}

impl PhotonRng for Lcg48 {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        self.next_u48() as f64 / (MASK as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_in_unit_interval() {
        let mut g = Lcg48::new(1);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = Lcg48::new(7);
        let mut b = Lcg48::new(7);
        let mut c = Lcg48::new(8);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u48()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u48()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u48()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn inverse_pow2_is_inverse() {
        for a in [1u64, 3, 0x5DEE_CE66D, MASK, 12345677] {
            let inv = inverse_pow2(a);
            assert_eq!(mul_mod(a, inv), 1, "a={a:#x}");
        }
    }

    #[test]
    fn jump_ahead_matches_sequential_stepping() {
        for n in [0u64, 1, 2, 7, 64, 1000, 48611] {
            let mut fast = Lcg48::new(99);
            fast.jump_ahead(n);
            let mut slow = Lcg48::new(99);
            for _ in 0..n {
                slow.next_u48();
            }
            assert_eq!(fast.state(), slow.state(), "n={n}");
        }
    }

    #[test]
    fn jump_ahead_is_additive() {
        let mut a = Lcg48::new(5);
        a.jump_ahead(1000);
        a.jump_ahead(234);
        let mut b = Lcg48::new(5);
        b.jump_ahead(1234);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn substream_blocks_tile_the_base_stream() {
        let base = Lcg48::new(777);
        let mut reference = base.clone();
        for index in 0..5u64 {
            let mut sub = base.substream(index, 16);
            for step in 0..16 {
                assert_eq!(
                    sub.next_u48(),
                    reference.next_u48(),
                    "index={index} step={step}"
                );
            }
        }
    }

    #[test]
    fn substream_zero_is_identity() {
        let base = Lcg48::new(41);
        let mut sub = base.substream(0, 4096);
        let mut reference = base.clone();
        for _ in 0..64 {
            assert_eq!(sub.next_u48(), reference.next_u48());
        }
    }

    #[test]
    fn leapfrog_interleave_reconstructs_base_stream() {
        // The defining property of the paper's splitting scheme.
        for nranks in [1usize, 2, 3, 4, 7, 8] {
            let base = Lcg48::new(2024);
            let mut subs: Vec<Lcg48> = (0..nranks).map(|r| base.leapfrog(r, nranks)).collect();
            let mut reference = base.clone();
            for step in 0..200 {
                let expect = reference.next_u48();
                let got = subs[step % nranks].next_u48();
                assert_eq!(got, expect, "nranks={nranks} step={step}");
            }
        }
    }

    #[test]
    fn leapfrog_streams_are_disjoint() {
        let base = Lcg48::new(31337);
        let mut s0 = base.leapfrog(0, 4);
        let mut s1 = base.leapfrog(1, 4);
        let a: std::collections::HashSet<u64> = (0..2000).map(|_| s0.next_u48()).collect();
        let overlap = (0..2000).filter(|_| a.contains(&s1.next_u48())).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn leapfrog_single_rank_is_identity() {
        let base = Lcg48::new(17);
        let mut sub = base.leapfrog(0, 1);
        let mut reference = base.clone();
        for _ in 0..100 {
            assert_eq!(sub.next_u48(), reference.next_u48());
        }
    }

    #[test]
    #[should_panic]
    fn leapfrog_rank_out_of_range_panics() {
        Lcg48::new(0).leapfrog(4, 4);
    }

    #[test]
    fn mean_and_variance_are_uniform() {
        let mut g = Lcg48::new(123);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let v = g.next_f64();
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn low_serial_correlation() {
        let mut g = Lcg48::new(321);
        let n = 100_000;
        let mut prev = g.next_f64();
        let mut cov = 0.0;
        for _ in 0..n {
            let v = g.next_f64();
            cov += (prev - 0.5) * (v - 0.5);
            prev = v;
        }
        let corr = cov / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.02, "lag-1 correlation {corr}");
    }
}
