//! Pseudo-random numbers for parallel Monte Carlo photon transport.
//!
//! The dissertation (ch. 5, *Random Number Generation*) requires that the `P`
//! processors of a parallel Photon run draw from **disjoint subsequences of a
//! single global pseudo-random stream**, so no work is duplicated and a
//! `P`-processor run is exactly reproducible. It uses the *leapfrog* method:
//! the base sequence `x_0, x_1, x_2, ...` is dealt out like cards, processor
//! `i` of `P` receiving `x_i, x_{i+P}, x_{i+2P}, ...`. The generator's period
//! (2^48 here) divides into `P` per-processor periods of `2^48 / P`.
//!
//! [`Lcg48`] is a 48-bit linear congruential generator (the classic `drand48`
//! multiplier). Leapfrogging an LCG is exact and cheap: the `P`-stride
//! subsequence of an LCG is itself an LCG with multiplier `a^P mod m` and an
//! adjusted increment, both computed in `O(log P)` by modular doubling
//! ([`Lcg48::leapfrog`]); arbitrary jump-ahead works the same way
//! ([`Lcg48::jump_ahead`]).
//!
//! [`CountingRng`] wraps any generator and counts draws — used by the
//! photon-generation FLOP accounting experiment (paper ch. 4 charges
//! 3 floating-point operations per random draw).

#![deny(missing_docs)]

pub mod counting;
pub mod lcg;

pub use counting::CountingRng;
pub use lcg::Lcg48;

/// Minimal random-source interface used throughout the workspace.
///
/// Deliberately tiny (one method) so the simulator, the samplers and the
/// tests can swap in counting or scripted implementations.
pub trait PhotonRng {
    /// Next uniform deviate in `[0, 1)`.
    fn next_f64(&mut self) -> f64;

    /// Uniform deviate in `[lo, hi)`.
    #[inline]
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (n must be > 0 and small relative to 2^48;
    /// modulo bias is negligible at the scales used here).
    #[inline]
    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let i = (self.next_f64() * n as f64) as usize;
        i.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scripted(Vec<f64>, usize);
    impl PhotonRng for Scripted {
        fn next_f64(&mut self) -> f64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    #[test]
    fn range_maps_unit_interval() {
        let mut r = Scripted(vec![0.0, 0.5, 0.999], 0);
        assert_eq!(r.range(2.0, 4.0), 2.0);
        assert_eq!(r.range(2.0, 4.0), 3.0);
        assert!(r.range(2.0, 4.0) < 4.0);
    }

    #[test]
    fn index_never_reaches_n() {
        let mut r = Scripted(vec![0.999_999_999], 0);
        for n in 1..10 {
            assert!(r.index(n) < n);
        }
    }
}
