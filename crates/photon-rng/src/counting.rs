//! A wrapper that counts random draws, for operation accounting.

use crate::PhotonRng;

/// Counts how many deviates have been drawn from the wrapped generator.
///
/// Chapter 4 of the dissertation compares photon-generation kernels by
/// floating-point operation count, charging 3 flops per random draw
/// (the Lawrence Livermore convention is used for the transcendental ops).
/// The comparison experiment (`fig4_3`) uses this wrapper to measure the
/// *actual* expected draws per photon of each kernel.
#[derive(Clone, Debug)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: PhotonRng> CountingRng<R> {
    /// Wraps a generator with a zeroed counter.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Number of `next_f64` calls so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Resets the counter.
    pub fn reset(&mut self) {
        self.draws = 0;
    }

    /// Unwraps the inner generator.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: PhotonRng> PhotonRng for CountingRng<R> {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        self.draws += 1;
        self.inner.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lcg48;

    #[test]
    fn counts_every_draw() {
        let mut c = CountingRng::new(Lcg48::new(1));
        for _ in 0..17 {
            c.next_f64();
        }
        assert_eq!(c.draws(), 17);
        c.reset();
        assert_eq!(c.draws(), 0);
    }

    #[test]
    fn passes_values_through_unchanged() {
        let mut plain = Lcg48::new(9);
        let mut counted = CountingRng::new(Lcg48::new(9));
        for _ in 0..50 {
            assert_eq!(plain.next_f64(), counted.next_f64());
        }
    }

    #[test]
    fn derived_helpers_count_underlying_draws() {
        let mut c = CountingRng::new(Lcg48::new(2));
        let _ = c.range(0.0, 10.0);
        let _ = c.index(5);
        assert_eq!(c.draws(), 2);
    }
}
