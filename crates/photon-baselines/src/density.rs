//! The Density Estimation baseline (Shirley et al. / Zareski, ch. 3).
//!
//! Three phases: *particle tracing* writes every photon-surface interaction
//! to a hit-point file; *density estimation* turns each surface's hit points
//! into an irradiance function (kernel smoothing); *meshing* produces
//! Gouraud-shadable vertices. The paper's two criticisms, both measurable
//! here:
//!
//! 1. **Storage**: the hit file is `O(photons)` — "if each photon requires
//!    100 bytes of storage, a realistic scene might consume a terabyte" —
//!    versus Photon's histogram distillation (1–2 orders smaller, compare
//!    [`HitFile::bytes`] with a bin forest's `memory_bytes`).
//! 2. **Parallel bottleneck**: phase 1 is embarrassingly parallel
//!    (speedup ≈ 15/16), but phase 2 parallelizes *per surface*, so its
//!    speedup is capped by the surface with the most hits (≈ 8.5, and as
//!    low as 4.5, on 16 processors). [`parallel_phase_model`] computes both
//!    caps from the actual hit distribution.

use photon_core::generate::PhotonGenerator;
use photon_core::trace::{trace_photon, Termination};
use photon_geom::Scene;
use photon_hist::BinPoint;
use photon_math::Rgb;
use photon_rng::Lcg48;

/// One record of the hit-point file (the paper budgets ~100 bytes per hit
/// with full ray history; we store the needed 48).
#[derive(Clone, Copy, Debug)]
pub struct HitPoint {
    /// Surface hit.
    pub patch_id: u32,
    /// Bilinear position on the surface.
    pub s: f64,
    /// Bilinear position on the surface.
    pub t: f64,
    /// Deposited energy.
    pub energy: Rgb,
}

/// Bytes per stored hit point (struct layout, plus file framing).
pub const HIT_BYTES: usize = 48;

/// The "mass storage" hit-point file.
#[derive(Clone, Debug, Default)]
pub struct HitFile {
    hits: Vec<HitPoint>,
}

impl HitFile {
    /// All hits.
    pub fn hits(&self) -> &[HitPoint] {
        &self.hits
    }

    /// O(photons) storage footprint — criticism #1.
    pub fn bytes(&self) -> usize {
        self.hits.len() * HIT_BYTES
    }

    /// Hit count per patch (phase-2 work distribution).
    pub fn per_patch_counts(&self, npatches: usize) -> Vec<u64> {
        let mut counts = vec![0u64; npatches];
        for h in &self.hits {
            counts[h.patch_id as usize] += 1;
        }
        counts
    }
}

/// Phase 1: particle tracing. Reuses Photon's transport kernel but records
/// raw hit points instead of histogram tallies.
pub fn particle_trace(scene: &Scene, photons: u64, seed: u64) -> HitFile {
    let generator = PhotonGenerator::new(scene);
    let mut rng = Lcg48::new(seed);
    let mut file = HitFile::default();
    let mut sink = |patch_id: u32, point: &BinPoint, energy: Rgb| {
        file.hits.push(HitPoint {
            patch_id,
            s: point.s,
            t: point.t,
            energy,
        });
    };
    let mut absorbed = 0u64;
    for _ in 0..photons {
        if trace_photon(scene, &generator, &mut rng, &mut sink).termination == Termination::Absorbed
        {
            absorbed += 1;
        }
    }
    let _ = absorbed;
    file
}

/// Phase 2: per-surface kernel density estimation on a `res x res` grid of
/// the patch's `(s, t)` square (box kernel of radius `bandwidth`).
pub fn estimate_density(
    file: &HitFile,
    patch_id: u32,
    res: usize,
    bandwidth: f64,
) -> Vec<Vec<f64>> {
    let mut grid = vec![vec![0.0f64; res]; res];
    let mut count = 0u64;
    for h in file.hits().iter().filter(|h| h.patch_id == patch_id) {
        count += 1;
        let si = ((h.s * res as f64) as usize).min(res - 1);
        let ti = ((h.t * res as f64) as usize).min(res - 1);
        let r = (bandwidth * res as f64).ceil() as isize;
        for di in -r..=r {
            for dj in -r..=r {
                let i = si as isize + di;
                let j = ti as isize + dj;
                if i >= 0 && j >= 0 && (i as usize) < res && (j as usize) < res {
                    grid[i as usize][j as usize] += h.energy.luminance();
                }
            }
        }
    }
    if count > 0 {
        let norm = 1.0 / count as f64;
        for row in grid.iter_mut() {
            for v in row.iter_mut() {
                *v *= norm;
            }
        }
    }
    grid
}

/// Phase 3: meshing — Gouraud vertices from the density grid:
/// `(s, t, intensity)` triples.
pub fn mesh_vertices(grid: &[Vec<f64>]) -> Vec<(f64, f64, f64)> {
    let res = grid.len();
    let mut verts = Vec::with_capacity(res * res);
    for (i, row) in grid.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            verts.push((
                (i as f64 + 0.5) / res as f64,
                (j as f64 + 0.5) / res as f64,
                v,
            ));
        }
    }
    verts
}

/// The two-program parallel structure of Zareski's implementation, modeled
/// from an actual hit distribution.
#[derive(Clone, Copy, Debug)]
pub struct PhaseSpeedups {
    /// Phase-1 speedup on `procs` processors (startup-limited, near linear).
    pub particle_tracing: f64,
    /// Phase-2 speedup: per-surface tasks scheduled LPT onto processors;
    /// capped by the largest surface.
    pub density_meshing: f64,
}

/// Computes both phase speedups for `procs` processors.
///
/// Phase 1 divides photons evenly (serial fraction `startup`). Phase 2
/// schedules each surface's hit processing as one indivisible task
/// (longest-processing-time greedy), so `speedup <= total / max_surface` no
/// matter how many processors — the paper's admission.
pub fn parallel_phase_model(per_patch: &[u64], procs: usize, startup: f64) -> PhaseSpeedups {
    assert!(procs >= 1);
    let total: u64 = per_patch.iter().sum();
    // Phase 1: Amdahl with a small serial startup fraction.
    let particle_tracing = 1.0 / (startup + (1.0 - startup) / procs as f64);
    // Phase 2: LPT greedy schedule.
    let mut tasks: Vec<u64> = per_patch.to_vec();
    tasks.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; procs];
    for t in tasks {
        let min = loads.iter_mut().min().unwrap();
        *min += t;
    }
    let makespan = loads.into_iter().max().unwrap_or(0).max(1);
    let density_meshing = total as f64 / makespan as f64;
    PhaseSpeedups {
        particle_tracing,
        density_meshing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::{Patch, Vec3};

    fn lit_floor() -> Scene {
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::new(0.0, 0.0, 4.0),
                Vec3::new(4.0, 0.0, 0.0),
            ),
            Material::matte(Rgb::gray(0.6)),
        );
        // Light faces down ((-z) x (x) = -y), toward the floor.
        let light = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, 3.0, 0.5),
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::new(1.0, 0.0, 0.0),
            ),
            Material::emitter(Rgb::WHITE),
        );
        Scene::new(
            vec![floor, light],
            vec![Luminaire {
                patch_id: 1,
                power: Rgb::gray(50.0),
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn hit_file_grows_linearly_with_photons() {
        let scene = lit_floor();
        let f1 = particle_trace(&scene, 2_000, 5);
        let f2 = particle_trace(&scene, 4_000, 5);
        let ratio = f2.bytes() as f64 / f1.bytes().max(1) as f64;
        assert!((ratio - 2.0).abs() < 0.2, "bytes ratio {ratio}");
    }

    #[test]
    fn density_concentrates_under_the_light() {
        let scene = lit_floor();
        let file = particle_trace(&scene, 30_000, 6);
        let grid = estimate_density(&file, 0, 16, 0.03);
        // The light panel hovers over one region of the floor; density
        // there must dominate the far corner.
        let peak = grid.iter().flatten().cloned().fold(0.0f64, f64::max);
        let corner = grid[0][0].min(grid[15][15]);
        assert!(peak > 4.0 * (corner + 1e-12), "peak {peak} corner {corner}");
    }

    #[test]
    fn mesh_has_res_squared_vertices_in_unit_square() {
        let grid = vec![vec![1.0; 8]; 8];
        let verts = mesh_vertices(&grid);
        assert_eq!(verts.len(), 64);
        assert!(verts
            .iter()
            .all(|&(s, t, _)| (0.0..=1.0).contains(&s) && (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn phase_two_is_bottlenecked_by_largest_surface() {
        // The paper's numbers: ~15/16 for tracing, ~8.5 (down to 4.5) for
        // density estimation when one surface dominates.
        let mut per_patch = vec![1_000u64; 31];
        per_patch.push(30_000); // one dominant surface
        let s = parallel_phase_model(&per_patch, 16, 0.005);
        assert!(s.particle_tracing > 14.0, "{s:?}");
        assert!(s.density_meshing < 8.0, "{s:?}");
        // More processors cannot break the cap.
        let s64 = parallel_phase_model(&per_patch, 64, 0.005);
        let cap = per_patch.iter().sum::<u64>() as f64 / 30_000.0;
        assert!(s64.density_meshing <= cap + 1e-9, "{s64:?} vs cap {cap}");
    }

    #[test]
    fn balanced_surfaces_let_phase_two_scale() {
        let per_patch = vec![1000u64; 64];
        let s = parallel_phase_model(&per_patch, 16, 0.005);
        assert!(s.density_meshing > 12.0, "{s:?}");
    }

    #[test]
    fn hit_file_is_much_larger_than_photon_bins() {
        // Criticism #1 quantified: raw hits vs Photon's distilled forest on
        // the same workload.
        use photon_core::{SimConfig, Simulator};
        let scene = lit_floor();
        let photons = 50_000;
        let file = particle_trace(&scene, photons, 7);
        let mut sim = Simulator::new(
            lit_floor(),
            SimConfig {
                seed: 7,
                ..Default::default()
            },
        );
        sim.run_photons(photons);
        let forest_bytes = sim.forest().memory_bytes();
        assert!(
            file.bytes() > 5 * forest_bytes,
            "hit file {} vs forest {}",
            file.bytes(),
            forest_bytes
        );
    }
}
