//! Zonal-harmonic approximation of a specular spike (ch. 2, Fig 2.4).
//!
//! Sillion's extended radiosity summarizes directional intensity with
//! spherical harmonics. The paper's Fig 2.4 shows why that fails for
//! specular spikes: a 30-term expansion of a near-delta lobe still rings
//! (Gibbs phenomenon) and undershoots below zero near the spike. For a
//! rotationally symmetric lobe the expansion reduces to *zonal* harmonics —
//! Legendre polynomials in `cos(deviation)` — which is what we expand here.

#![allow(clippy::needless_range_loop)] // i/j matrix kernels index both sides
/// Evaluates Legendre polynomials `P_0..P_{n-1}` at `x` by the recurrence.
pub fn legendre_all(n: usize, x: f64) -> Vec<f64> {
    let mut p = Vec::with_capacity(n);
    if n == 0 {
        return p;
    }
    p.push(1.0);
    if n == 1 {
        return p;
    }
    p.push(x);
    for l in 1..n - 1 {
        let lf = l as f64;
        let next = ((2.0 * lf + 1.0) * x * p[l] - lf * p[l - 1]) / (lf + 1.0);
        p.push(next);
    }
    p
}

/// A specular lobe as a function of deviation angle from the mirror
/// direction: `f(d) = max(cos d, 0)^sharpness`, normalized to peak 1.
pub fn specular_lobe(deviation: f64, sharpness: f64) -> f64 {
    deviation.cos().max(0.0).powf(sharpness)
}

/// Zonal-harmonic expansion of [`specular_lobe`] with `terms` coefficients,
/// computed by Gauss-style quadrature over `quad_points` samples of
/// `x = cos(deviation)` in [-1, 1].
#[derive(Clone, Debug)]
pub struct ZonalExpansion {
    /// Coefficients `c_l` such that `f(d) ≈ Σ c_l P_l(cos d)`.
    pub coeffs: Vec<f64>,
}

impl ZonalExpansion {
    /// Projects the lobe onto the first `terms` zonal harmonics.
    pub fn project(sharpness: f64, terms: usize, quad_points: usize) -> Self {
        // c_l = (2l+1)/2 ∫_{-1}^{1} f(x) P_l(x) dx  (midpoint rule).
        let mut coeffs = vec![0.0; terms];
        let h = 2.0 / quad_points as f64;
        for k in 0..quad_points {
            let x = -1.0 + (k as f64 + 0.5) * h;
            let f = x.max(0.0).powf(sharpness);
            let p = legendre_all(terms, x);
            for (l, c) in coeffs.iter_mut().enumerate() {
                *c += f * p[l] * h;
            }
        }
        for (l, c) in coeffs.iter_mut().enumerate() {
            *c *= (2.0 * l as f64 + 1.0) / 2.0;
        }
        ZonalExpansion { coeffs }
    }

    /// Evaluates the expansion at deviation angle `d` (radians).
    pub fn eval(&self, deviation: f64) -> f64 {
        let x = deviation.cos();
        let p = legendre_all(self.coeffs.len(), x);
        self.coeffs.iter().zip(&p).map(|(c, pl)| c * pl).sum()
    }

    /// Samples `(deviation, truth, approximation)` over
    /// `[-range, range]` — the data behind Fig 2.4.
    pub fn figure_series(
        &self,
        sharpness: f64,
        range: f64,
        samples: usize,
    ) -> Vec<(f64, f64, f64)> {
        (0..samples)
            .map(|i| {
                let d = -range + 2.0 * range * i as f64 / (samples - 1) as f64;
                (d, specular_lobe(d.abs(), sharpness), self.eval(d.abs()))
            })
            .collect()
    }

    /// Maximum undershoot below zero over the sampled range — the ringing
    /// the paper points at ("there will always be ringing near the spike").
    pub fn max_undershoot(&self, range: f64, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..samples {
            let d = range * i as f64 / (samples - 1) as f64;
            let v = self.eval(d);
            if v < 0.0 {
                worst = worst.max(-v);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legendre_known_values() {
        let p = legendre_all(4, 0.5);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        // P2(x) = (3x^2 - 1)/2 = -0.125 at x=0.5
        assert!((p[2] + 0.125).abs() < 1e-12);
        // P3(x) = (5x^3 - 3x)/2 = -0.4375 at x=0.5
        assert!((p[3] + 0.4375).abs() < 1e-12);
    }

    #[test]
    fn legendre_orthogonality() {
        // ∫ P_m P_n over [-1,1] = 0 for m != n (midpoint quadrature).
        let n = 6;
        let q = 20_000;
        let h = 2.0 / q as f64;
        let mut gram = vec![vec![0.0; n]; n];
        for k in 0..q {
            let x = -1.0 + (k as f64 + 0.5) * h;
            let p = legendre_all(n, x);
            for i in 0..n {
                for j in 0..n {
                    gram[i][j] += p[i] * p[j] * h;
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert!(gram[i][j].abs() < 1e-3, "({i},{j}) = {}", gram[i][j]);
                }
            }
        }
    }

    #[test]
    fn smooth_lobes_are_approximated_well() {
        // A wide (cosine) lobe needs few terms.
        let e = ZonalExpansion::project(1.0, 8, 4000);
        for d in [0.0, 0.5, 1.0, 1.5] {
            let err = (e.eval(d) - specular_lobe(d, 1.0)).abs();
            assert!(err < 0.02, "d={d}: err {err}");
        }
    }

    #[test]
    fn thirty_terms_still_ring_on_a_sharp_spike() {
        // The paper's Fig 2.4: 30 terms on a tight specular spike leave
        // visible ringing (negative lobes) away from the peak.
        let sharp = 800.0;
        let e = ZonalExpansion::project(sharp, 30, 8000);
        let undershoot = e.max_undershoot(1.5, 2000);
        assert!(
            undershoot > 0.01,
            "expected ringing, undershoot {undershoot}"
        );
        // And the peak is underestimated.
        let peak = e.eval(0.0);
        assert!(peak < 0.95, "peak {peak} too good for 30 terms");
    }

    #[test]
    fn more_terms_reduce_peak_error_slowly() {
        let sharp = 800.0;
        let e10 = ZonalExpansion::project(sharp, 10, 8000).eval(0.0);
        let e30 = ZonalExpansion::project(sharp, 30, 8000).eval(0.0);
        assert!(e30 > e10, "more terms should recover more of the peak");
        // But even 30 terms are far from 1.0 — the paper's storage point:
        // "possibly hundreds of terms for each specular reflective spike".
        assert!(e30 < 0.95);
    }

    #[test]
    fn figure_series_is_symmetric() {
        let e = ZonalExpansion::project(100.0, 20, 4000);
        let s = e.figure_series(100.0, 1.5, 301);
        let mid = s.len() / 2;
        for k in 1..10 {
            assert!((s[mid - k].2 - s[mid + k].2).abs() < 1e-9);
        }
    }
}
