//! Hierarchical radiosity à la Hanrahan (ch. 2).
//!
//! Hanrahan's insight: distant patch pairs interact weakly, so their form
//! factor can be summarized at a coarse level; refinement subdivides only
//! where the *form-factor estimate* is inaccurate. The paper's critique,
//! which this module makes measurable:
//!
//! > "the adaptive nature depended not on the overall error in the answer,
//! > but on the error in a single form factor … Consider a corner in the
//! > shadow underneath a desk: refining the geometry in this area does not
//! > improve overall answer quality. It is dark and thus the error
//! > associated with the patches will be small. What results is a plethora
//! > of patches that may be unnecessary."
//!
//! [`HierarchicalRadiosity::solve`] runs refine/gather/push-pull over a
//! quadtree per input patch; [`RefineStats`] reports where the elements
//! went. The `radiosity_demo` experiment shows elements accumulating in
//! dark regions (form-factor-driven) versus Photon's photon-driven bins
//! concentrating where the light actually is.

use photon_geom::Scene;
use photon_math::{Patch, Rgb, Vec3};

/// One quadtree element of a surface.
#[derive(Clone, Debug)]
struct Element {
    patch: Patch,
    center: Vec3,
    normal: Vec3,
    area: f64,
    /// Input patch this element descends from.
    root: u32,
    children: Option<[usize; 4]>,
    /// Gathered irradiance estimate.
    b: Rgb,
}

/// Interaction link between two elements with an estimated form factor.
#[derive(Clone, Copy, Debug)]
struct Link {
    from: usize,
    to: usize,
    ff: f64,
}

/// Refinement statistics — the evidence for the paper's critique.
#[derive(Clone, Debug, Default)]
pub struct RefineStats {
    /// Total elements created.
    pub elements: usize,
    /// Links established.
    pub links: usize,
    /// Elements whose final radiosity is below `dark_threshold` — "patches
    /// that may be unnecessary".
    pub dark_elements: usize,
    /// Fraction of elements that are dark.
    pub dark_fraction: f64,
}

/// Hanrahan-style hierarchical radiosity solver.
pub struct HierarchicalRadiosity {
    elements: Vec<Element>,
    links: Vec<Link>,
    /// Form-factor magnitude above which a link must refine.
    pub f_eps: f64,
    /// Minimum element area (the `A_eps` refinement floor).
    pub a_eps: f64,
}

impl HierarchicalRadiosity {
    /// Builds root elements from a scene's patches.
    pub fn new(scene: &Scene, f_eps: f64, a_eps: f64) -> Self {
        let elements = scene
            .patches()
            .iter()
            .enumerate()
            .map(|(i, sp)| Element {
                patch: sp.patch,
                center: sp.patch.center(),
                normal: sp.frame.w,
                area: sp.area,
                root: i as u32,
                children: None,
                b: sp.material.emission,
            })
            .collect();
        HierarchicalRadiosity {
            elements,
            links: Vec::new(),
            f_eps,
            a_eps,
        }
    }

    /// Disc-approximation form factor from element `i` toward `j`.
    fn ff(&self, i: usize, j: usize) -> f64 {
        let ei = &self.elements[i];
        let ej = &self.elements[j];
        let d = ej.center - ei.center;
        let r2 = d.length_sq().max(1e-9);
        let dir = d / r2.sqrt();
        let cos_i = ei.normal.dot(dir).max(0.0);
        let cos_j = (-ej.normal.dot(dir)).max(0.0);
        cos_i * cos_j * ej.area / (std::f64::consts::PI * r2 + ej.area)
    }

    fn subdivide(&mut self, i: usize) -> [usize; 4] {
        if let Some(c) = self.elements[i].children {
            return c;
        }
        let parent = self.elements[i].clone();
        let (s_lo, s_hi) = parent.patch.split_s();
        let quads = {
            let (a, b) = s_lo.split_t();
            let (c, d) = s_hi.split_t();
            [a, b, c, d]
        };
        let mut idx = [0usize; 4];
        for (k, q) in quads.into_iter().enumerate() {
            idx[k] = self.elements.len();
            self.elements.push(Element {
                center: q.center(),
                normal: parent.normal,
                area: q.area(),
                patch: q,
                root: parent.root,
                children: None,
                b: parent.b,
            });
        }
        self.elements[i].children = Some(idx);
        idx
    }

    /// Establishes links between two elements, refining recursively while
    /// the estimated form factor exceeds `f_eps` and elements are larger
    /// than `a_eps` (Hanrahan's oracle: form-factor error, not answer
    /// error).
    fn refine(&mut self, i: usize, j: usize, depth: u32) {
        if i == j {
            return;
        }
        let fij = self.ff(i, j);
        if fij <= 0.0 {
            return;
        }
        let small = self.elements[i].area <= self.a_eps && self.elements[j].area <= self.a_eps;
        if fij < self.f_eps || small || depth >= 12 {
            self.links.push(Link {
                from: j,
                to: i,
                ff: fij,
            });
            return;
        }
        // Subdivide the larger element.
        if self.elements[i].area >= self.elements[j].area && self.elements[i].area > self.a_eps {
            for c in self.subdivide(i) {
                self.refine(c, j, depth + 1);
            }
        } else if self.elements[j].area > self.a_eps {
            for c in self.subdivide(j) {
                self.refine(i, c, depth + 1);
            }
        } else {
            self.links.push(Link {
                from: j,
                to: i,
                ff: fij,
            });
        }
    }

    /// Runs refinement + `sweeps` gather/push-pull iterations over the
    /// element hierarchy; returns per-root radiosity and statistics.
    pub fn solve(&mut self, scene: &Scene, sweeps: usize, dark_threshold: f64) -> RefineStats {
        let roots: Vec<usize> = (0..scene.polygon_count()).collect();
        for &i in &roots {
            for &j in &roots {
                if i != j {
                    self.refine(i, j, 0);
                }
            }
        }
        let rhos: Vec<Rgb> = scene.patches().iter().map(|p| p.material.diffuse).collect();
        let emits: Vec<Rgb> = scene
            .patches()
            .iter()
            .map(|p| p.material.emission)
            .collect();
        for _ in 0..sweeps {
            // Gather over links.
            let snapshot: Vec<Rgb> = self.elements.iter().map(|e| e.b).collect();
            let links = self.links.clone();
            for e in self.elements.iter_mut() {
                e.b = emits[e.root as usize];
            }
            for l in links {
                let rho = rhos[self.elements[l.to].root as usize];
                let add = rho.filter(snapshot[l.from]) * l.ff;
                self.elements[l.to].b += add;
            }
            // Push-pull: parents average children; children inherit parent
            // gathers (area-weighted pull, uniform push).
            self.push_pull(&roots);
        }
        let mut stats = RefineStats {
            elements: self.elements.len(),
            links: self.links.len(),
            ..Default::default()
        };
        for e in &self.elements {
            if e.children.is_none() && e.b.luminance() < dark_threshold {
                stats.dark_elements += 1;
            }
        }
        let leaves = self
            .elements
            .iter()
            .filter(|e| e.children.is_none())
            .count();
        stats.dark_fraction = stats.dark_elements as f64 / leaves.max(1) as f64;
        stats
    }

    fn push_pull(&mut self, roots: &[usize]) {
        for &r in roots {
            self.push(r, Rgb::BLACK);
            self.pull(r);
        }
    }

    fn push(&mut self, i: usize, down: Rgb) {
        let b = self.elements[i].b + down;
        if let Some(children) = self.elements[i].children {
            for c in children {
                self.push(c, b);
            }
        } else {
            self.elements[i].b = b;
        }
    }

    fn pull(&mut self, i: usize) -> Rgb {
        if let Some(children) = self.elements[i].children {
            let mut acc = Rgb::BLACK;
            let mut area = 0.0;
            for c in children {
                let cb = self.pull(c);
                let ca = self.elements[c].area;
                acc += cb * ca;
                area += ca;
            }
            let avg = acc / area.max(1e-12);
            self.elements[i].b = avg;
            avg
        } else {
            self.elements[i].b
        }
    }

    /// Leaf elements of one root patch with their radiosity, for inspection:
    /// `(center, area, radiosity)`.
    pub fn leaves_of(&self, root: u32) -> Vec<(Vec3, f64, Rgb)> {
        self.elements
            .iter()
            .filter(|e| e.root == root && e.children.is_none())
            .map(|e| (e.center, e.area, e.b))
            .collect()
    }

    /// Total element count (the paper's patch-proliferation metric).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Luminaire, Material, SurfacePatch};

    /// A lit room slice: bright emitter facing a floor, plus a far dark
    /// panel tucked behind an occluder (the "corner under the desk").
    fn demo_scene() -> Scene {
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::new(0.0, 0.0, 4.0),
                Vec3::new(4.0, 0.0, 0.0),
            ),
            Material::matte(Rgb::gray(0.6)),
        );
        // Light faces down ((-z) x (x) = -y), toward the floor.
        let light = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-1.0, 3.0, 1.0),
                Vec3::new(0.0, 0.0, -2.0),
                Vec3::new(2.0, 0.0, 0.0),
            ),
            Material::emitter(Rgb::WHITE),
        );
        // Dark panel faces the scene (+z) but sees the light only at
        // grazing distance — nearly dark.
        let dark_panel = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -6.0),
                Vec3::new(4.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
            ),
            Material::matte(Rgb::gray(0.6)),
        );
        Scene::new(
            vec![floor, light, dark_panel],
            vec![Luminaire {
                patch_id: 1,
                power: Rgb::gray(10.0),
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn refinement_creates_a_hierarchy() {
        let scene = demo_scene();
        let mut h = HierarchicalRadiosity::new(&scene, 0.05, 0.05);
        let stats = h.solve(&scene, 4, 1e-3);
        assert!(stats.elements > scene.polygon_count(), "{stats:?}");
        assert!(stats.links > 0);
    }

    #[test]
    fn lit_surfaces_receive_energy() {
        let scene = demo_scene();
        let mut h = HierarchicalRadiosity::new(&scene, 0.05, 0.05);
        h.solve(&scene, 6, 1e-3);
        let floor_leaves = h.leaves_of(0);
        let bright = floor_leaves
            .iter()
            .filter(|(_, _, b)| b.luminance() > 1e-3)
            .count();
        assert!(bright > 0, "floor never lit");
    }

    #[test]
    fn refinement_oracle_spends_elements_on_dark_geometry() {
        // The paper's critique, quantified: the form-factor oracle refines
        // the far panel even though it ends up an order of magnitude darker
        // than the floor — elements spent where they cannot reduce answer
        // error.
        let scene = demo_scene();
        // f_eps below the panel's root-level form factor (~0.01), so the
        // oracle insists on refining even that nearly-unlit surface.
        let mut h = HierarchicalRadiosity::new(&scene, 0.008, 0.02);
        h.solve(&scene, 6, 1e-2);
        let mean_lum = |leaves: &[(Vec3, f64, Rgb)]| {
            leaves.iter().map(|(_, _, b)| b.luminance()).sum::<f64>() / leaves.len().max(1) as f64
        };
        let floor = h.leaves_of(0);
        let panel = h.leaves_of(2);
        assert!(panel.len() > 1, "dark panel was never refined");
        let (fl, pl) = (mean_lum(&floor), mean_lum(&panel));
        assert!(
            pl < 0.2 * fl,
            "panel ({pl}) should be much darker than floor ({fl}) yet holds {} elements",
            panel.len()
        );
    }

    #[test]
    fn tighter_f_eps_means_more_elements() {
        let scene = demo_scene();
        let mut coarse = HierarchicalRadiosity::new(&scene, 0.2, 0.05);
        let ce = coarse.solve(&scene, 2, 1e-3).elements;
        let mut fine = HierarchicalRadiosity::new(&scene, 0.02, 0.01);
        let fe = fine.solve(&scene, 2, 1e-3).elements;
        assert!(fe > ce, "coarse {ce} fine {fe}");
    }

    #[test]
    fn element_areas_partition_roots() {
        let scene = demo_scene();
        let mut h = HierarchicalRadiosity::new(&scene, 0.05, 0.05);
        h.solve(&scene, 2, 1e-3);
        for root in 0..scene.polygon_count() as u32 {
            let total: f64 = h.leaves_of(root).iter().map(|(_, a, _)| a).sum();
            let expect = scene.patch(root).area;
            assert!(
                (total - expect).abs() / expect < 1e-9,
                "root {root}: leaves {total} vs {expect}"
            );
        }
    }
}
