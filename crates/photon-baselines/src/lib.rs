//! Comparison algorithms from the paper's chapters 2–3.
//!
//! The dissertation motivates Photon by walking through the competing
//! global-illumination families and their parallelization prospects. Each
//! gets a working implementation here so the paper's qualitative claims are
//! testable, not rhetorical:
//!
//! | module | algorithm | paper's claim we reproduce |
//! |--------|-----------|----------------------------|
//! | [`raytrace`] | Whitted ray tracing (point lights) | razor-sharp shadows regardless of distance, no color bleeding (Fig 2.2) |
//! | [`radiosity`] | flat radiosity: form factors + `(I−ρF)b = e` solved by Jacobi/Gauss-Seidel | diagonally dominant system, iterative convergence (ch. 2) |
//! | [`hierarchical`] | Hanrahan-style hierarchical radiosity | form-factor-driven refinement proliferates patches in dark regions (ch. 2) |
//! | [`sphharm`] | zonal-harmonic approximation of a specular spike | 30 terms still ring near the spike (Fig 2.4) |
//! | [`density`] | Shirley/Zareski density estimation | hit-point files are O(photons); the meshing phase bottlenecks on the largest surface (ch. 3) |

#![deny(missing_docs)]

pub mod density;
pub mod hierarchical;
pub mod radiosity;
pub mod raytrace;
pub mod sphharm;
