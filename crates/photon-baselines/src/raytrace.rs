//! Whitted-style backward ray tracing (ch. 2, Fig 2.1/2.2).
//!
//! The baseline the paper contrasts with: rays from the eye, point-light
//! shadow rays, recursive mirror reflection, Phong-style shading. Its
//! defects are the point: *sharp shadows at any occluder distance* (a point
//! light is either visible or not) and *no color bleeding* (surfaces only
//! see emitters, never each other). Both are asserted by the `fig2_2`
//! experiment against Photon's soft shadows.

use photon_core::img::Image;
use photon_core::view::Camera;
use photon_geom::Scene;
use photon_math::{Ray, Rgb, Vec3};

/// A point light for the Whitted model.
#[derive(Clone, Copy, Debug)]
pub struct PointLight {
    /// Position.
    pub pos: Vec3,
    /// Intensity (inverse-square falloff applied).
    pub intensity: Rgb,
}

/// Whitted ray tracer over a Photon scene plus point lights.
#[derive(Clone, Debug)]
pub struct RayTracer {
    /// Point lights (replacing the scene's area luminaires).
    pub lights: Vec<PointLight>,
    /// Ambient term (the `Ia` of Whitted's formula).
    pub ambient: Rgb,
    /// Recursion cap for mirror bounces.
    pub max_depth: u32,
}

impl RayTracer {
    /// A tracer with the given lights and a small ambient floor.
    pub fn new(lights: Vec<PointLight>) -> Self {
        RayTracer {
            lights,
            ambient: Rgb::gray(0.03),
            max_depth: 4,
        }
    }

    /// Renders the scene.
    pub fn render(&self, scene: &Scene, camera: &Camera) -> Image {
        let mut img = Image::new(camera.width, camera.height);
        for y in 0..camera.height {
            for x in 0..camera.width {
                let ray = camera.ray(x, y);
                img.set(x, y, self.trace(scene, &ray, 0));
            }
        }
        img
    }

    /// Radiance along one ray (Whitted's `I = Ia + kd Σ (N·Lj) Ij + ks S`).
    pub fn trace(&self, scene: &Scene, ray: &Ray, depth: u32) -> Rgb {
        let Some(hit) = scene.intersect(ray, f64::INFINITY) else {
            return Rgb::BLACK;
        };
        let sp = scene.patch(hit.patch_id);
        if sp.material.emission.max_channel() > 0.0 {
            return sp.material.emission;
        }
        let n = if hit.front { sp.frame.w } else { -sp.frame.w };
        let mut color = self.ambient.filter(sp.material.diffuse);
        // Diffuse: shadow ray per light; binary visibility = hard shadows.
        for light in &self.lights {
            let to_light = light.pos - hit.point;
            let dist_sq = to_light.length_sq();
            let ldir = to_light / dist_sq.sqrt();
            let cos = n.dot(ldir);
            if cos <= 0.0 {
                continue;
            }
            if self.light_visible(scene, hit.point + n * 1e-6, light.pos) {
                color += sp.material.diffuse.filter(light.intensity) * (cos / dist_sq);
            }
        }
        // Mirror recursion.
        if sp.material.mirror > 0.0 && depth < self.max_depth {
            let rdir = ray.dir.reflect(n);
            let rray = Ray::new(hit.point, rdir).nudged(1e-6);
            color += self.trace(scene, &rray, depth + 1) * sp.material.mirror;
        }
        color
    }

    fn light_visible(&self, scene: &Scene, from: Vec3, light_pos: Vec3) -> bool {
        scene.visible(from, light_pos)
    }

    /// Scans shadow sharpness along a line on a horizontal receiver: the
    /// mean light *visibility* in `[0, 1]` at `samples` points from `a` to
    /// `b`. A point light yields a binary profile — zero penumbra, the
    /// paper's complaint — independent of the inverse-square shading term.
    pub fn shadow_profile(&self, scene: &Scene, a: Vec3, b: Vec3, samples: usize) -> Vec<f64> {
        (0..samples)
            .map(|i| {
                let t = i as f64 / (samples - 1).max(1) as f64;
                let p = a.lerp(b, t);
                let visible = self
                    .lights
                    .iter()
                    .filter(|l| self.light_visible(scene, p + Vec3::Y * 1e-6, l.pos))
                    .count();
                visible as f64 / self.lights.len().max(1) as f64
            })
            .collect()
    }
}

/// Width of the transition region of a shadow profile: the fraction of the
/// scan between 10 % and 90 % of the profile's range. Hard shadows give
/// (nearly) zero; area lights give widths growing with occluder distance.
pub fn penumbra_width(profile: &[f64]) -> f64 {
    let lo = profile.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = profile.iter().cloned().fold(0.0f64, f64::max);
    if hi - lo < 1e-12 {
        return 0.0;
    }
    let t10 = lo + 0.1 * (hi - lo);
    let t90 = lo + 0.9 * (hi - lo);
    let inside = profile.iter().filter(|&&v| v > t10 && v < t90).count();
    inside as f64 / profile.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::Patch;

    /// Floor at y=0 with a 1x1 occluder at height `h` centered at origin.
    fn occluder_scene(h: f64) -> Scene {
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-5.0, 0.0, -5.0),
                Vec3::new(0.0, 0.0, 10.0),
                Vec3::new(10.0, 0.0, 0.0),
            ),
            Material::matte(Rgb::gray(0.8)),
        );
        let occ = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, h, -0.5),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ),
            Material::matte(Rgb::gray(0.3)),
        );
        // A dummy emitter so Scene's luminaire invariant holds — placed far
        // outside the light path so it cannot occlude the point light.
        let lamp = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(40.0, 40.0, 40.0),
                Vec3::new(0.2, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 0.2),
            ),
            Material::emitter(Rgb::WHITE),
        );
        Scene::new(
            vec![floor, occ, lamp],
            vec![Luminaire {
                patch_id: 2,
                power: Rgb::gray(1.0),
                collimation: 1.0,
            }],
        )
    }

    fn tracer() -> RayTracer {
        RayTracer::new(vec![PointLight {
            pos: Vec3::new(0.0, 8.0, 0.0),
            intensity: Rgb::gray(100.0),
        }])
    }

    #[test]
    fn point_light_shadows_are_sharp_at_any_distance() {
        // The paper's Fig 2.2 complaint: penumbra ~ 0 no matter how far the
        // occluder is from the receiver.
        for h in [0.5, 2.0, 4.0] {
            let scene = occluder_scene(h);
            let profile = tracer().shadow_profile(
                &scene,
                Vec3::new(-3.0, 0.0, 0.0),
                Vec3::new(3.0, 0.0, 0.0),
                400,
            );
            let w = penumbra_width(&profile);
            assert!(w < 0.02, "h={h}: point-light penumbra {w} not sharp");
        }
    }

    #[test]
    fn shadow_region_is_dark_and_lit_region_is_bright() {
        let scene = occluder_scene(1.0);
        let t = tracer();
        let shadowed = t.shadow_profile(&scene, Vec3::ZERO, Vec3::new(0.01, 0.0, 0.0), 2);
        let lit = t.shadow_profile(
            &scene,
            Vec3::new(4.0, 0.0, 0.0),
            Vec3::new(4.01, 0.0, 0.0),
            2,
        );
        assert!(shadowed[0] < 1e-9, "under the occluder should be black");
        assert!(lit[0] > 0.1, "open floor should be lit");
    }

    #[test]
    fn render_produces_shadowed_image() {
        let scene = occluder_scene(1.0);
        let cam = Camera {
            eye: Vec3::new(0.0, 6.0, -6.0),
            target: Vec3::ZERO,
            up: Vec3::Y,
            vfov_deg: 50.0,
            width: 48,
            height: 36,
        };
        let img = tracer().render(&scene, &cam);
        assert!(img.mean_luminance() > 0.001);
    }

    #[test]
    fn mirror_recursion_reflects_the_light() {
        // Mirror floor under the point light: the mirror pixel must carry
        // reflected energy.
        let mirror_floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::new(0.0, 0.0, 4.0),
                Vec3::new(4.0, 0.0, 0.0),
            ),
            Material::mirror(0.9),
        );
        let lamp = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, 4.0, -0.5),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ),
            Material::emitter(Rgb::WHITE),
        );
        let scene = Scene::new(
            vec![mirror_floor, lamp],
            vec![Luminaire {
                patch_id: 1,
                power: Rgb::gray(1.0),
                collimation: 1.0,
            }],
        );
        let t = tracer();
        // Aim at the floor point whose mirror image of the eye sees the
        // lamp center: eye (0,4,-4), lamp (0,4,0) => floor point (0,0,-2).
        let eye = Vec3::new(0.0, 4.0, -4.0);
        let ray = Ray::new(eye, (Vec3::new(0.0, 0.0, -2.0) - eye).normalized());
        let c = t.trace(&scene, &ray, 0);
        assert!(c.luminance() > 0.5, "mirror did not reflect emitter: {c:?}");
    }

    #[test]
    fn no_color_bleeding_between_diffuse_surfaces() {
        // A red wall next to a white floor: in Whitted shading the floor
        // color has no red contribution beyond the white light itself —
        // the paper's "no color interaction" complaint.
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::new(0.0, 0.0, 4.0),
                Vec3::new(4.0, 0.0, 0.0),
            ),
            Material::matte(Rgb::WHITE),
        );
        let red_wall = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, 2.0),
                Vec3::new(4.0, 0.0, 0.0),
                Vec3::new(0.0, 4.0, 0.0),
            ),
            Material::matte(Rgb::new(0.9, 0.05, 0.05)),
        );
        let lamp = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, 4.0, -0.5),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ),
            Material::emitter(Rgb::WHITE),
        );
        let scene = Scene::new(
            vec![floor, red_wall, lamp],
            vec![Luminaire {
                patch_id: 2,
                power: Rgb::gray(1.0),
                collimation: 1.0,
            }],
        );
        let t = RayTracer::new(vec![PointLight {
            pos: Vec3::new(0.0, 3.0, 0.0),
            intensity: Rgb::gray(50.0),
        }]);
        // Floor point right next to the red wall.
        let ray = Ray::new(
            Vec3::new(0.0, 2.0, 0.0),
            (Vec3::new(0.0, 0.0, 1.8) - Vec3::new(0.0, 2.0, 0.0)).normalized(),
        );
        let c = t.trace(&scene, &ray, 0);
        // Perfectly gray response: r == g == b (no bleed).
        assert!(
            (c.r - c.g).abs() < 1e-12 && (c.g - c.b).abs() < 1e-12,
            "{c:?}"
        );
    }
}
