//! Flat (full-matrix) radiosity (ch. 2).
//!
//! Radiosity solves the Rendering Equation for ideal diffuse reflectors:
//! discretize surfaces into patches of constant radiosity, estimate
//! pairwise form factors, and solve `(I − ρF) b = e`. The paper's
//! analytical points, all asserted here:
//!
//! * form-factor rows sum to (at most) one, with zero diagonal;
//! * the system matrix is strictly diagonally dominant (Gerschgorin discs
//!   centered at 1 with radius < 1), so Jacobi and Gauss-Seidel converge;
//! * for a fixed reflectivity bound the iteration count to a given
//!   precision is constant, making the solve `O(N²)` rather than `O(N³)`.
//!
//! Form factors between patches use the disc-to-point approximation the
//! paper mentions, Monte-Carlo-sampled visibility for `g(i,j)`.

#![allow(clippy::needless_range_loop)] // i/j matrix kernels index both sides
use photon_geom::Scene;
use photon_math::Rgb;
use photon_rng::{Lcg48, PhotonRng};

/// A radiosity system over the patches of a scene.
#[derive(Clone, Debug)]
pub struct RadiositySystem {
    /// Row-major form factor matrix `F[i][j]` (fraction of energy leaving
    /// patch `i` that arrives at patch `j`).
    pub form_factors: Vec<Vec<f64>>,
    /// Per-patch reflectivity.
    pub rho: Vec<Rgb>,
    /// Per-patch emittance.
    pub emit: Vec<Rgb>,
}

/// Result of an iterative solve.
#[derive(Clone, Debug)]
pub struct RadiosityResult {
    /// Per-patch radiosity.
    pub b: Vec<Rgb>,
    /// Iterations to convergence.
    pub iterations: usize,
    /// Final residual (max channel change of the last sweep).
    pub residual: f64,
}

impl RadiositySystem {
    /// Assembles the system from a scene. Form factors use the
    /// center-to-center disc approximation with `vis_samples`
    /// Monte-Carlo visibility samples per pair.
    pub fn assemble(scene: &Scene, vis_samples: usize, seed: u64) -> Self {
        let n = scene.polygon_count();
        let mut rng = Lcg48::new(seed);
        let mut form_factors = vec![vec![0.0; n]; n];
        for i in 0..n {
            let pi = scene.patch(i as u32);
            for j in 0..n {
                if i == j {
                    continue; // planar patches never see themselves
                }
                let pj = scene.patch(j as u32);
                // Monte-Carlo point-pair estimate of the disc form factor.
                let mut acc = 0.0;
                for _ in 0..vis_samples.max(1) {
                    let (si, ti) = (rng.next_f64(), rng.next_f64());
                    let (sj, tj) = (rng.next_f64(), rng.next_f64());
                    let xi = pi.patch.point_at(si, ti);
                    let xj = pj.patch.point_at(sj, tj);
                    let d = xj - xi;
                    let r2 = d.length_sq();
                    if r2 < 1e-12 {
                        continue;
                    }
                    let dir = d / r2.sqrt();
                    let cos_i = pi.frame.w.dot(dir);
                    let cos_j = -pj.frame.w.dot(dir);
                    if cos_i <= 0.0 || cos_j <= 0.0 {
                        continue;
                    }
                    if !scene.visible(xi + pi.frame.w * 1e-6, xj + pj.frame.w * 1e-6) {
                        continue;
                    }
                    // Point-to-point kernel cosθ cosθ' / (π r²), times the
                    // receiving area.
                    acc += cos_i * cos_j / (std::f64::consts::PI * r2) * pj.area;
                }
                form_factors[i][j] = acc / vis_samples.max(1) as f64;
            }
            // Clamp rows to sum <= 1 (Monte-Carlo noise can overshoot in
            // tight corners; physical rows never exceed 1).
            let row_sum: f64 = form_factors[i].iter().sum();
            if row_sum > 1.0 {
                for f in form_factors[i].iter_mut() {
                    *f /= row_sum;
                }
            }
        }
        let rho = scene.patches().iter().map(|p| p.material.diffuse).collect();
        let emit = scene
            .patches()
            .iter()
            .map(|p| p.material.emission)
            .collect();
        RadiositySystem {
            form_factors,
            rho,
            emit,
        }
    }

    /// Number of patches.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// True when the system is empty.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// Checks the paper's Gerschgorin argument: every row of `I − ρF` has
    /// diagonal 1 and off-diagonal absolute sum `ρ_i · Σ_j F_ij < 1`.
    /// Returns the largest off-diagonal row sum.
    pub fn gerschgorin_radius(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.len() {
            let rho_max = self.rho[i].max_channel();
            let row: f64 = self.form_factors[i].iter().sum();
            worst = worst.max(rho_max * row);
        }
        worst
    }

    /// Jacobi iteration: `b_{k+1} = e + ρ F b_k`.
    pub fn solve_jacobi(&self, tol: f64, max_iters: usize) -> RadiosityResult {
        let n = self.len();
        let mut b = self.emit.clone();
        let mut next = vec![Rgb::BLACK; n];
        for it in 1..=max_iters {
            let mut residual = 0.0f64;
            for i in 0..n {
                let mut gather = Rgb::BLACK;
                for j in 0..n {
                    gather += b[j] * self.form_factors[i][j];
                }
                let v = self.emit[i] + self.rho[i].filter(gather);
                let d = (v.r - b[i].r)
                    .abs()
                    .max((v.g - b[i].g).abs())
                    .max((v.b - b[i].b).abs());
                residual = residual.max(d);
                next[i] = v;
            }
            std::mem::swap(&mut b, &mut next);
            if residual < tol {
                return RadiosityResult {
                    b,
                    iterations: it,
                    residual,
                };
            }
        }
        RadiosityResult {
            b,
            iterations: max_iters,
            residual: f64::INFINITY,
        }
    }

    /// Gauss-Seidel iteration (in-place sweeps; converges no slower than
    /// Jacobi for diagonally dominant systems).
    pub fn solve_gauss_seidel(&self, tol: f64, max_iters: usize) -> RadiosityResult {
        let n = self.len();
        let mut b = self.emit.clone();
        for it in 1..=max_iters {
            let mut residual = 0.0f64;
            for i in 0..n {
                let mut gather = Rgb::BLACK;
                for j in 0..n {
                    gather += b[j] * self.form_factors[i][j];
                }
                let v = self.emit[i] + self.rho[i].filter(gather);
                let d = (v.r - b[i].r)
                    .abs()
                    .max((v.g - b[i].g).abs())
                    .max((v.b - b[i].b).abs());
                residual = residual.max(d);
                b[i] = v;
            }
            if residual < tol {
                return RadiosityResult {
                    b,
                    iterations: it,
                    residual,
                };
            }
        }
        RadiosityResult {
            b,
            iterations: max_iters,
            residual: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::{Patch, Vec3};

    /// Two unit squares facing each other 1 apart, one emitting, plus a side
    /// panel.
    fn facing_squares() -> Scene {
        let a = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y); // faces +z
        let b = Patch::from_origin_edges(Vec3::new(0.0, 0.0, 1.0), Vec3::Y, Vec3::X); // faces -z
        let side =
            Patch::from_origin_edges(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0), Vec3::Y); // faces +x at x=0
        let mut pa = SurfacePatch::new(a, Material::matte(Rgb::gray(0.5)));
        pa.material.emission = Rgb::WHITE;

        Scene::new(
            vec![
                pa,
                SurfacePatch::new(b, Material::matte(Rgb::gray(0.5))),
                SurfacePatch::new(side, Material::matte(Rgb::gray(0.5))),
            ],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn form_factor_of_parallel_unit_squares_matches_analytic() {
        // The analytic form factor between parallel unit squares at unit
        // distance is ~0.1998.
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 3000, 11);
        let f01 = sys.form_factors[0][1];
        assert!((f01 - 0.1998).abs() < 0.02, "F01 = {f01}");
        // Reciprocity A_i F_ij = A_j F_ji for equal areas => symmetric.
        let f10 = sys.form_factors[1][0];
        assert!((f01 - f10).abs() < 0.02, "F01 {f01} vs F10 {f10}");
    }

    #[test]
    fn diagonal_is_zero_and_rows_bounded() {
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 500, 12);
        for i in 0..sys.len() {
            assert_eq!(sys.form_factors[i][i], 0.0);
            let row: f64 = sys.form_factors[i].iter().sum();
            assert!(row <= 1.0 + 1e-9, "row {i} sums to {row}");
        }
    }

    #[test]
    fn gerschgorin_radius_below_one_for_physical_scenes() {
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 500, 13);
        let r = sys.gerschgorin_radius();
        assert!(r < 1.0, "radius {r}");
    }

    #[test]
    fn jacobi_and_gauss_seidel_agree() {
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 1000, 14);
        let j = sys.solve_jacobi(1e-10, 1000);
        let gs = sys.solve_gauss_seidel(1e-10, 1000);
        assert!(j.residual < 1e-10 && gs.residual < 1e-10);
        for i in 0..sys.len() {
            assert!((j.b[i].r - gs.b[i].r).abs() < 1e-8, "patch {i}");
        }
        // Gauss-Seidel converges at least as fast.
        assert!(gs.iterations <= j.iterations);
    }

    #[test]
    fn solution_satisfies_fixed_point() {
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 1000, 15);
        let sol = sys.solve_gauss_seidel(1e-12, 2000);
        for i in 0..sys.len() {
            let mut gather = Rgb::BLACK;
            for j in 0..sys.len() {
                gather += sol.b[j] * sys.form_factors[i][j];
            }
            let rhs = sys.emit[i] + sys.rho[i].filter(gather);
            assert!((rhs.g - sol.b[i].g).abs() < 1e-9, "patch {i}");
        }
    }

    #[test]
    fn iteration_count_is_insensitive_to_problem_scaling() {
        // The paper: for bounded reflectivity the iteration count to fixed
        // precision is (nearly) constant — solve cost O(N^2), not O(N^3).
        let scene = facing_squares();
        let sys = RadiositySystem::assemble(&scene, 800, 16);
        let its_small = sys.solve_jacobi(1e-8, 1000).iterations;
        // A brighter source scales b linearly but convergence is governed
        // by the spectral radius (rho*F), unchanged.
        let mut brighter = sys.clone();
        for e in brighter.emit.iter_mut() {
            *e *= 1000.0;
        }
        let its_big = brighter.solve_jacobi(1e-8 * 1000.0, 1000).iterations;
        assert!((its_small as i64 - its_big as i64).abs() <= 2);
    }

    #[test]
    fn dark_room_converges_instantly() {
        // No emitters => b = 0 in one sweep.
        let a = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y);
        let mut pa = SurfacePatch::new(a, Material::matte(Rgb::gray(0.5)));
        pa.material.emission = Rgb::new(0.0, 0.0, 1e-12); // nominal emitter
        let scene = Scene::new(
            vec![pa],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::new(0.0, 0.0, 1e-12),
                collimation: 1.0,
            }],
        );
        let sys = RadiositySystem::assemble(&scene, 10, 17);
        let sol = sys.solve_jacobi(1e-9, 10);
        assert!(sol.b[0].luminance() < 1e-9);
    }
}
