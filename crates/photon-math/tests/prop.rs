//! Property tests on the geometric primitives.

use photon_math::{Aabb, CylDir, Onb, Patch, Ray, Vec3};
use proptest::prelude::*;

fn arb_vec3(r: f64) -> impl Strategy<Value = Vec3> {
    (-r..r, -r..r, -r..r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_unit() -> impl Strategy<Value = Vec3> {
    arb_vec3(1.0)
        .prop_filter("nonzero", |v| v.length_sq() > 1e-4)
        .prop_map(|v| v.normalized())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reflection preserves length and flips only the normal component.
    #[test]
    fn reflect_involution(d in arb_unit(), n in arb_unit()) {
        let r = d.reflect(n);
        prop_assert!((r.length() - 1.0).abs() < 1e-9);
        // Reflecting twice returns the original direction.
        let rr = r.reflect(n);
        prop_assert!((rr - d).length() < 1e-9);
    }

    /// Cross products are orthogonal to both inputs.
    #[test]
    fn cross_orthogonality(a in arb_vec3(10.0), b in arb_vec3(10.0)) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6 * (1.0 + a.length() * b.length()));
        prop_assert!(c.dot(b).abs() < 1e-6 * (1.0 + a.length() * b.length()));
    }

    /// Any normal yields a right-handed orthonormal basis whose round trip
    /// is the identity.
    #[test]
    fn onb_round_trip(n in arb_unit(), v in arb_vec3(5.0)) {
        let onb = Onb::from_w(n);
        prop_assert!((onb.u.cross(onb.v).dot(onb.w) - 1.0).abs() < 1e-6);
        let back = onb.to_world(onb.to_local(v));
        prop_assert!((back - v).length() < 1e-8 * (1.0 + v.length()));
    }

    /// Cylindrical direction coordinates round-trip on the hemisphere.
    #[test]
    fn cyl_dir_round_trip(d in arb_unit()) {
        let up = Vec3::new(d.x, d.y, d.z.abs().max(1e-6));
        let up = up.normalized();
        let c = CylDir::from_local(up);
        prop_assert!(c.is_valid());
        let back = c.to_local();
        prop_assert!((back - up).length() < 1e-6, "{:?} -> {:?} -> {:?}", up, c, back);
    }

    /// A ray hitting an AABB enters before it exits, and points sampled in
    /// the interval are inside (padded for roundoff).
    #[test]
    fn aabb_slab_interval(
        lo in arb_vec3(5.0),
        ext in (0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0),
        origin in arb_vec3(20.0),
        dir in arb_unit(),
    ) {
        let b = Aabb::new(lo, lo + Vec3::new(ext.0, ext.1, ext.2));
        let ray = Ray::new(origin, dir);
        if let Some((t0, t1)) = b.hit(&ray, 0.0, f64::INFINITY) {
            prop_assert!(t0 <= t1);
            let mid = ray.at(0.5 * (t0 + t1));
            prop_assert!(b.padded(1e-6).contains(mid), "{:?} not in {:?}", mid, b);
        }
    }

    /// Patch area equals the parallelogram area for parallelogram patches,
    /// and the bilinear center is the average of the corners.
    #[test]
    fn patch_area_and_center(origin in arb_vec3(5.0), e1 in arb_vec3(3.0), e2 in arb_vec3(3.0)) {
        prop_assume!(e1.cross(e2).length() > 1e-3);
        let p = Patch::from_origin_edges(origin, e1, e2);
        prop_assert!((p.area() - e1.cross(e2).length()).abs() < 1e-9 * (1.0 + p.area()));
        let avg = (p.p00 + p.p10 + p.p11 + p.p01) / 4.0;
        prop_assert!((p.center() - avg).length() < 1e-9);
    }

    /// Ray/patch hits land on the patch plane at the reported parameter.
    #[test]
    fn patch_hit_is_on_plane(
        origin in arb_vec3(3.0),
        e1 in arb_vec3(2.0),
        e2 in arb_vec3(2.0),
        ro in arb_vec3(10.0),
        rd in arb_unit(),
    ) {
        prop_assume!(e1.cross(e2).length() > 1e-2);
        let p = Patch::from_origin_edges(origin, e1, e2);
        let ray = Ray::new(ro, rd);
        if let Some(hit) = p.intersect(&ray, 1e-9, f64::INFINITY) {
            // Point is consistent with the ray parameter.
            prop_assert!((ray.at(hit.t) - hit.point).length() < 1e-9);
            // And on the plane.
            let n = p.normal();
            let dist = (hit.point - p.p00).dot(n).abs();
            prop_assert!(dist < 1e-6, "off plane by {}", dist);
            // And the bilinear coordinates reproduce the point.
            let q = p.point_at(hit.s, hit.v);
            prop_assert!((q - hit.point).length() < 1e-6);
        }
    }
}
