//! Axis-aligned bounding boxes and the slab intersection test.

use crate::{Ray, Vec3};

/// An axis-aligned box `[min, max]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Vec3,
    /// Componentwise maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (inverted bounds); union with anything yields the other
    /// operand.
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f64::INFINITY),
        max: Vec3::splat(f64::NEG_INFINITY),
    };

    /// Creates a box from two corners (componentwise sorted).
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Box containing a set of points. Returns `EMPTY` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Self {
        let mut b = Aabb::EMPTY;
        for p in pts {
            b = b.grown(p);
        }
        b
    }

    /// True when `min <= max` on every axis.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.min.x <= self.max.x && self.min.y <= self.max.y && self.min.z <= self.max.z
    }

    /// The smallest box containing `self` and the point `p`.
    #[inline]
    pub fn grown(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// The box expanded by `pad` on every side.
    #[inline]
    pub fn padded(&self, pad: f64) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(pad),
            max: self.max + Vec3::splat(pad),
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Extent on each axis.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface area (zero for invalid boxes).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if !self.is_valid() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// True when the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when the boxes overlap (closed intervals).
    #[inline]
    pub fn overlaps(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Slab test: returns the `(t_enter, t_exit)` parameter interval where the
    /// ray overlaps the box clipped to `[t_min, t_max]`, or `None`.
    ///
    /// Handles rays parallel to a slab via IEEE infinity arithmetic.
    #[inline]
    pub fn hit(&self, ray: &Ray, t_min: f64, t_max: f64) -> Option<(f64, f64)> {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let inv = ray.inv_dir[axis];
            let mut near = (self.min[axis] - ray.origin[axis]) * inv;
            let mut far = (self.max[axis] - ray.origin[axis]) * inv;
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            // NaN (0 * inf) appears when the origin sits exactly on a slab of
            // a degenerate box; treat it as non-constraining.
            if near.is_nan() || far.is_nan() {
                continue;
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// The eight octant sub-boxes, split at the center, indexed by the 3-bit
    /// code `(x | y<<1 | z<<2)` where a set bit selects the upper half.
    pub fn octants(&self) -> [Aabb; 8] {
        let c = self.center();
        let mut out = [Aabb::EMPTY; 8];
        for (code, slot) in out.iter_mut().enumerate() {
            let lo = Vec3::new(
                if code & 1 == 0 { self.min.x } else { c.x },
                if code & 2 == 0 { self.min.y } else { c.y },
                if code & 4 == 0 { self.min.z } else { c.z },
            );
            let hi = Vec3::new(
                if code & 1 == 0 { c.x } else { self.max.x },
                if code & 2 == 0 { c.y } else { self.max.y },
                if code & 4 == 0 { c.z } else { self.max.z },
            );
            *slot = Aabb { min: lo, max: hi };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 2.0), Vec3::new(0.0, 3.0, -2.0));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 2.0));
    }

    #[test]
    fn empty_union_identity() {
        let b = unit_box();
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert!(!Aabb::EMPTY.is_valid());
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.0, 5.0)];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn surface_area_of_unit_cube() {
        assert!(approx_eq(unit_box().surface_area(), 6.0, EPS));
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
    }

    #[test]
    fn ray_through_center_hits() {
        let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        let (t0, t1) = unit_box().hit(&r, 0.0, f64::INFINITY).unwrap();
        assert!(approx_eq(t0, 1.0, EPS));
        assert!(approx_eq(t1, 2.0, EPS));
    }

    #[test]
    fn ray_missing_box() {
        let r = Ray::new(Vec3::new(2.0, 2.0, -1.0), Vec3::Z);
        assert!(unit_box().hit(&r, 0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn ray_parallel_inside_slab_hits() {
        let r = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::X);
        assert!(unit_box().hit(&r, 0.0, f64::INFINITY).is_some());
    }

    #[test]
    fn ray_parallel_outside_slab_misses() {
        let r = Ray::new(Vec3::new(0.5, 2.0, 0.5), Vec3::X);
        assert!(unit_box().hit(&r, 0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn hit_respects_t_range() {
        let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        // Box entry at t=1 lies outside [0, 0.5].
        assert!(unit_box().hit(&r, 0.0, 0.5).is_none());
    }

    #[test]
    fn octants_partition_volume() {
        let b = unit_box();
        let oct = b.octants();
        for o in &oct {
            assert!(o.is_valid());
            let e = o.extent();
            assert!(approx_eq(e.x, 0.5, EPS));
            assert!(approx_eq(e.y, 0.5, EPS));
            assert!(approx_eq(e.z, 0.5, EPS));
        }
        // Octant codes place the first octant at the min corner.
        assert_eq!(oct[0].min, b.min);
        assert_eq!(oct[7].max, b.max);
    }

    #[test]
    fn overlap_is_symmetric_and_tight() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0)); // touches at corner
        let c = Aabb::new(Vec3::splat(1.5), Vec3::splat(2.0));
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
