//! RGB energy triples.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign};

/// Linear RGB color / spectral energy triple.
///
/// The paper treats color as a fifth histogram dimension that is *not*
/// hierarchically subdivided (ch. 4); each bin simply accumulates energy per
/// channel. `f64` keeps long tallies exact enough for the conservation tests.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: f64,
    /// Green channel.
    pub g: f64,
    /// Blue channel.
    pub b: f64,
}

impl Rgb {
    /// Black / zero energy.
    pub const BLACK: Rgb = Rgb {
        r: 0.0,
        g: 0.0,
        b: 0.0,
    };
    /// Unit white.
    pub const WHITE: Rgb = Rgb {
        r: 1.0,
        g: 1.0,
        b: 1.0,
    };

    /// Creates a color from channels.
    #[inline]
    pub const fn new(r: f64, g: f64, b: f64) -> Self {
        Rgb { r, g, b }
    }

    /// Gray value `v` in every channel.
    #[inline]
    pub const fn gray(v: f64) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Photometric luminance (Rec. 709 weights).
    #[inline]
    pub fn luminance(self) -> f64 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }

    /// Mean of the three channels; used as the Russian-roulette survival
    /// probability for a reflectance color.
    #[inline]
    pub fn mean(self) -> f64 {
        (self.r + self.g + self.b) / 3.0
    }

    /// Largest channel.
    #[inline]
    pub fn max_channel(self) -> f64 {
        self.r.max(self.g).max(self.b)
    }

    /// Componentwise product (filtering light through a reflectance).
    #[inline]
    pub fn filter(self, o: Rgb) -> Rgb {
        Rgb::new(self.r * o.r, self.g * o.g, self.b * o.b)
    }

    /// Channels clamped to `[0, 1]`.
    #[inline]
    pub fn clamped(self) -> Rgb {
        Rgb::new(
            self.r.clamp(0.0, 1.0),
            self.g.clamp(0.0, 1.0),
            self.b.clamp(0.0, 1.0),
        )
    }

    /// Gamma-encodes (1/2.2) and quantizes to 8-bit for image output.
    pub fn to_srgb8(self) -> [u8; 3] {
        let enc = |v: f64| -> u8 {
            let c = v.clamp(0.0, 1.0).powf(1.0 / 2.2);
            (c * 255.0 + 0.5) as u8
        };
        [enc(self.r), enc(self.g), enc(self.b)]
    }

    /// True when any channel is NaN.
    #[inline]
    pub fn has_nan(self) -> bool {
        self.r.is_nan() || self.g.is_nan() || self.b.is_nan()
    }
}

impl Add for Rgb {
    type Output = Rgb;
    #[inline]
    fn add(self, o: Rgb) -> Rgb {
        Rgb::new(self.r + o.r, self.g + o.g, self.b + o.b)
    }
}

impl AddAssign for Rgb {
    #[inline]
    fn add_assign(&mut self, o: Rgb) {
        *self = *self + o;
    }
}

impl Mul<f64> for Rgb {
    type Output = Rgb;
    #[inline]
    fn mul(self, s: f64) -> Rgb {
        Rgb::new(self.r * s, self.g * s, self.b * s)
    }
}

impl MulAssign<f64> for Rgb {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Rgb {
    type Output = Rgb;
    #[inline]
    fn div(self, s: f64) -> Rgb {
        Rgb::new(self.r / s, self.g / s, self.b / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    #[test]
    fn filter_is_componentwise() {
        let light = Rgb::new(1.0, 0.5, 0.25);
        let surf = Rgb::new(0.5, 0.5, 0.0);
        assert_eq!(light.filter(surf), Rgb::new(0.5, 0.25, 0.0));
    }

    #[test]
    fn luminance_weights_sum_to_one() {
        assert!(approx_eq(Rgb::WHITE.luminance(), 1.0, EPS));
    }

    #[test]
    fn srgb8_endpoints() {
        assert_eq!(Rgb::BLACK.to_srgb8(), [0, 0, 0]);
        assert_eq!(Rgb::WHITE.to_srgb8(), [255, 255, 255]);
        // Values above 1 clamp instead of wrapping.
        assert_eq!(Rgb::gray(7.0).to_srgb8(), [255, 255, 255]);
    }

    #[test]
    fn mean_and_max() {
        let c = Rgb::new(0.2, 0.4, 0.9);
        assert!(approx_eq(c.mean(), 0.5, EPS));
        assert_eq!(c.max_channel(), 0.9);
    }

    #[test]
    fn arithmetic() {
        let a = Rgb::new(0.1, 0.2, 0.3);
        let mut b = a;
        b += a;
        assert!(approx_eq(b.g, 0.4, EPS));
        b *= 0.5;
        assert!(approx_eq(b.r, 0.1, EPS));
        assert!(approx_eq((a / 2.0).b, 0.15, EPS));
    }
}
