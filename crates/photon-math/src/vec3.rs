//! Double-precision 3-component vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`, used for points, directions and normals.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit x axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Returns the unit vector pointing the same way.
    ///
    /// Returns `Vec3::Z` for the zero vector so callers never receive NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            Vec3::Z
        }
    }

    /// True when the length is within `tol` of one.
    #[inline]
    pub fn is_unit(self, tol: f64) -> bool {
        (self.length_sq() - 1.0).abs() <= tol
    }

    /// Reflects `self` about the unit normal `n` (mirror direction).
    ///
    /// `self` points *toward* the surface; the result points away, following
    /// the usual `d - 2 (d·n) n` convention.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Componentwise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Componentwise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Componentwise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + o * t
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).length()
    }

    /// Index of the component with the largest absolute value (0, 1 or 2).
    #[inline]
    pub fn dominant_axis(self) -> usize {
        let ax = self.x.abs();
        let ay = self.y.abs();
        let az = self.z.abs();
        if ax >= ay && ax >= az {
            0
        } else if ay >= az {
            1
        } else {
            2
        }
    }

    /// True when any component is NaN.
    #[inline]
    pub fn has_nan(self) -> bool {
        self.x.is_nan() || self.y.is_nan() || self.z.is_nan()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Debug for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(a + Vec3::ZERO, a);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, EPS));
        assert!(approx_eq(c.dot(b), 0.0, EPS));
    }

    #[test]
    fn cross_of_axes() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn normalize_produces_unit() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!(v.normalized().is_unit(EPS));
        // Degenerate input gets a deterministic fallback, never NaN.
        assert_eq!(Vec3::ZERO.normalized(), Vec3::Z);
    }

    #[test]
    fn reflect_preserves_length_and_flips_normal_component() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let n = Vec3::Y;
        let r = d.reflect(n);
        assert!(approx_eq(r.length(), 1.0, EPS));
        assert!(approx_eq(r.dot(n), -d.dot(n), EPS));
        // Tangential component unchanged.
        assert!(approx_eq(r.x, d.x, EPS));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn dominant_axis_picks_largest_magnitude() {
        assert_eq!(Vec3::new(-5.0, 1.0, 2.0).dominant_axis(), 0);
        assert_eq!(Vec3::new(0.0, -3.0, 2.0).dominant_axis(), 1);
        assert_eq!(Vec3::new(0.1, -0.2, 0.9).dominant_axis(), 2);
    }

    #[test]
    fn componentwise_min_max() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, -1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -1.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -2.0);
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
