//! Orthonormal bases attached to surface normals.

use crate::Vec3;

/// A right-handed orthonormal basis `(u, v, w)` with `w` along a given normal.
///
/// Photon stores reflection directions in the local frame of the surface they
/// leave (ch. 4, Fig 4.5): `w` is the surface normal, `u`/`v` span the tangent
/// plane and fix the zero of the cylindrical angle `theta`.
#[derive(Clone, Copy, Debug)]
pub struct Onb {
    /// First tangent.
    pub u: Vec3,
    /// Second tangent.
    pub v: Vec3,
    /// Normal direction.
    pub w: Vec3,
}

impl Onb {
    /// Builds a basis whose `w` axis is `normal` (need not be unit length).
    ///
    /// Uses the branchless Frisvad construction, patched for the `w.z ≈ -1`
    /// singularity.
    pub fn from_w(normal: Vec3) -> Self {
        let w = normal.normalized();
        if w.z < -0.999_999 {
            // Antipodal singularity of the Frisvad formula.
            return Onb {
                u: Vec3::new(0.0, -1.0, 0.0),
                v: Vec3::new(-1.0, 0.0, 0.0),
                w,
            };
        }
        let a = 1.0 / (1.0 + w.z);
        let b = -w.x * w.y * a;
        Onb {
            u: Vec3::new(1.0 - w.x * w.x * a, b, -w.x),
            v: Vec3::new(b, 1.0 - w.y * w.y * a, -w.y),
            w,
        }
    }

    /// Builds a basis with `w = normal` and `u` aligned (as closely as
    /// possible) with `tangent_hint` projected onto the tangent plane.
    ///
    /// Patches use this so the `theta` histogram axis is anchored to the
    /// patch's own `s` edge, making bin contents reproducible regardless of
    /// how the normal was computed.
    pub fn from_wu(normal: Vec3, tangent_hint: Vec3) -> Self {
        let w = normal.normalized();
        let proj = tangent_hint - w * tangent_hint.dot(w);
        if proj.length_sq() < 1e-18 {
            return Onb::from_w(normal);
        }
        let u = proj.normalized();
        let v = w.cross(u);
        Onb { u, v, w }
    }

    /// Transforms local coordinates `(a, b, c)` into world space.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.u * local.x + self.v * local.y + self.w * local.z
    }

    /// Expresses a world-space vector in this basis.
    #[inline]
    pub fn to_local(&self, world: Vec3) -> Vec3 {
        Vec3::new(world.dot(self.u), world.dot(self.v), world.dot(self.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    fn assert_orthonormal(b: &Onb) {
        assert!(b.u.is_unit(EPS), "u not unit: {:?}", b.u);
        assert!(b.v.is_unit(EPS), "v not unit: {:?}", b.v);
        assert!(b.w.is_unit(EPS), "w not unit: {:?}", b.w);
        assert!(approx_eq(b.u.dot(b.v), 0.0, EPS));
        assert!(approx_eq(b.v.dot(b.w), 0.0, EPS));
        assert!(approx_eq(b.w.dot(b.u), 0.0, EPS));
        // Right-handed.
        assert!(approx_eq(b.u.cross(b.v).dot(b.w), 1.0, 1e-6));
    }

    #[test]
    fn frisvad_basis_is_orthonormal_for_many_normals() {
        for &n in &[
            Vec3::Z,
            -Vec3::Z,
            Vec3::X,
            Vec3::Y,
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 0.2, -0.93),
            Vec3::new(0.0, 0.0, -1.0 + 1e-9),
        ] {
            assert_orthonormal(&Onb::from_w(n));
        }
    }

    #[test]
    fn round_trip_world_local() {
        let b = Onb::from_w(Vec3::new(0.3, -0.5, 0.8));
        let v = Vec3::new(0.2, -0.7, 0.4);
        let back = b.to_world(b.to_local(v));
        assert!(approx_eq(back.x, v.x, 1e-9));
        assert!(approx_eq(back.y, v.y, 1e-9));
        assert!(approx_eq(back.z, v.z, 1e-9));
    }

    #[test]
    fn from_wu_anchors_u_to_hint() {
        let b = Onb::from_wu(Vec3::Z, Vec3::new(3.0, 0.0, 5.0));
        assert_orthonormal(&b);
        // Hint projected onto tangent plane is +X.
        assert!(approx_eq(b.u.x, 1.0, EPS));
    }

    #[test]
    fn from_wu_degenerate_hint_falls_back() {
        // Hint parallel to the normal carries no tangent information.
        let b = Onb::from_wu(Vec3::Z, Vec3::Z * 4.0);
        assert_orthonormal(&b);
    }

    #[test]
    fn local_z_is_normal() {
        let n = Vec3::new(1.0, 2.0, -0.5);
        let b = Onb::from_w(n);
        let up = b.to_world(Vec3::Z);
        let nn = n.normalized();
        assert!(approx_eq(up.dot(nn), 1.0, 1e-9));
    }
}
