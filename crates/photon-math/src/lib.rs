//! Geometric and numeric primitives for the Photon global-illumination system.
//!
//! This crate is the lowest layer of the workspace: double-precision 3-vectors,
//! rays, axis-aligned boxes, orthonormal bases, bilinear patch parameterization
//! and the cylindrical direction coordinates `(theta, r_sq)` used by the
//! four-dimensional histogram bins of Snell's *Photon* algorithm (ch. 4 of the
//! dissertation).
//!
//! Everything here is `Copy`, allocation-free and safe to use from any thread.

#![deny(missing_docs)]

pub mod aabb;
pub mod angle;
pub mod color;
pub mod onb;
pub mod patch;
pub mod ray;
pub mod vec3;

pub use aabb::Aabb;
pub use angle::{CylDir, HemiDir};
pub use color::Rgb;
pub use onb::Onb;
pub use patch::Patch;
pub use ray::Ray;
pub use vec3::Vec3;

/// Tolerance used by the approximate comparisons in this workspace.
pub const EPS: f64 = 1e-9;

/// Looser tolerance for quantities that accumulate rounding (areas, form
/// factors, Monte-Carlo tallies).
pub const EPS_LOOSE: f64 = 1e-6;

/// Returns true when `a` and `b` differ by at most `tol` absolutely or
/// relatively (whichever is larger).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, EPS));
        assert!(approx_eq(1e12, 1e12 + 1.0, EPS_LOOSE));
        assert!(!approx_eq(1.0, 1.1, EPS));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, EPS));
        assert!(approx_eq(0.0, 1e-12, EPS));
        assert!(!approx_eq(0.0, 1e-3, EPS));
    }
}
