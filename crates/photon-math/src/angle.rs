//! Cylindrical direction coordinates for the angular histogram axes.
//!
//! Photon bins reflection directions over the hemisphere with *cylindrical*
//! coordinates `(theta, r_sq)` rather than spherical `(phi, theta)`
//! (dissertation ch. 4, Fig 4.5): `theta` is the azimuth in the tangent plane
//! and `r_sq` is the **squared** projected radius of the unit direction onto
//! that plane. The paper's argument for `r_sq`: splitting the squared radius
//! in half splits the projected disc *area* in half, and a Lambertian
//! (cosine-weighted) distribution lands uniformly on that disc, so an even
//! `r_sq` split is an even photon split for diffuse surfaces. This module
//! provides the conversions plus the equal-measure checks used by tests.

use crate::{Onb, Vec3};
use std::f64::consts::TAU;

/// A direction in the upper hemisphere expressed in the bin parameterization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CylDir {
    /// Azimuth in `[0, tau)` measured from the local `u` axis.
    pub theta: f64,
    /// Squared projected radius in `[0, 1]`; `0` = along the normal,
    /// `1` = grazing.
    pub r_sq: f64,
}

/// A hemisphere direction in local coordinates (`z >= 0`, unit length).
#[derive(Clone, Copy, Debug)]
pub struct HemiDir {
    /// Local direction with `z` along the surface normal.
    pub local: Vec3,
}

impl CylDir {
    /// Converts a *local* unit direction (z = normal component, assumed
    /// `>= 0`) into cylindrical bin coordinates.
    #[inline]
    pub fn from_local(d: Vec3) -> Self {
        let r_sq = (d.x * d.x + d.y * d.y).min(1.0);
        let mut theta = d.y.atan2(d.x);
        if theta < 0.0 {
            theta += TAU;
        }
        // atan2(0,0) at the pole yields theta = 0: fine, the r_sq = 0 ring is
        // a single point and theta carries no information there.
        CylDir { theta, r_sq }
    }

    /// Converts a world-space direction into bin coordinates using the patch
    /// basis (`onb.w` = surface normal).
    #[inline]
    pub fn from_world(d: Vec3, onb: &Onb) -> Self {
        Self::from_local(onb.to_local(d))
    }

    /// Reconstructs the local unit direction. Inverse of [`CylDir::from_local`]
    /// for upper-hemisphere inputs.
    #[inline]
    pub fn to_local(self) -> Vec3 {
        let r = self.r_sq.max(0.0).sqrt();
        let z = (1.0 - self.r_sq).max(0.0).sqrt();
        Vec3::new(r * self.theta.cos(), r * self.theta.sin(), z)
    }

    /// True when the coordinates lie in the valid hemisphere ranges.
    #[inline]
    pub fn is_valid(self) -> bool {
        (0.0..TAU).contains(&self.theta) && (0.0..=1.0).contains(&self.r_sq)
    }
}

impl HemiDir {
    /// Wraps a local direction, clamping tiny negative `z` from rounding.
    #[inline]
    pub fn new(mut local: Vec3) -> Self {
        if local.z < 0.0 && local.z > -1e-12 {
            local.z = 0.0;
        }
        debug_assert!(local.z >= 0.0, "direction below hemisphere: {local:?}");
        HemiDir { local }
    }

    /// Cosine of the angle to the surface normal.
    #[inline]
    pub fn cos_elevation(&self) -> f64 {
        self.local.z
    }

    /// Bin coordinates of this direction.
    #[inline]
    pub fn cyl(&self) -> CylDir {
        CylDir::from_local(self.local)
    }
}

/// Fraction of a *Lambertian* (cosine-weighted) distribution falling inside
/// `r_sq <= x`. Equal to `x` itself — the projected-disc-area argument the
/// paper uses to justify splitting on squared radius.
#[inline]
pub fn lambertian_cdf_r_sq(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Fraction of a Lambertian distribution inside elevation angle `<= e`
/// (measured from the normal). Provided for the comparison test showing that
/// splitting the *elevation angle* in half does **not** split the
/// distribution in half (the paper's argument against spherical coordinates).
#[inline]
pub fn lambertian_cdf_elevation(e: f64) -> f64 {
    let s = e.sin();
    (s * s).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn round_trip_local_cyl_local() {
        for &(x, y, z) in &[
            (0.0, 0.0, 1.0),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.5, -0.5, 0.707_106_781_186_547_5),
            (-0.3, 0.4, 0.866_025_403_784_438_6),
        ] {
            let d = Vec3::new(x, y, z).normalized();
            let c = CylDir::from_local(d);
            assert!(c.is_valid(), "{c:?}");
            let back = c.to_local();
            assert!(approx_eq(back.x, d.x, 1e-9), "{d:?} -> {back:?}");
            assert!(approx_eq(back.y, d.y, 1e-9));
            assert!(approx_eq(back.z, d.z, 1e-9));
        }
    }

    #[test]
    fn theta_quadrants() {
        let east = CylDir::from_local(Vec3::new(1.0, 0.0, 0.0));
        let north = CylDir::from_local(Vec3::new(0.0, 1.0, 0.0));
        let west = CylDir::from_local(Vec3::new(-1.0, 0.0, 0.0));
        assert!(approx_eq(east.theta, 0.0, EPS));
        assert!(approx_eq(north.theta, FRAC_PI_2, EPS));
        assert!(approx_eq(west.theta, PI, EPS));
    }

    #[test]
    fn r_sq_is_projected_radius_squared() {
        // 45 degrees elevation: r = sin(45), r_sq = 1/2.
        let d = Vec3::new(FRAC_PI_4.sin(), 0.0, FRAC_PI_4.cos());
        let c = CylDir::from_local(d);
        assert!(approx_eq(c.r_sq, 0.5, 1e-12));
    }

    #[test]
    fn half_r_sq_is_half_lambertian_mass() {
        // The paper's justification for the r^2 axis: exactly half the
        // cosine-weighted photons land in r_sq <= 1/2 ...
        assert!(approx_eq(lambertian_cdf_r_sq(0.5), 0.5, EPS));
        // ... whereas half the *elevation angle* captures only half the
        // mass for sin^2(pi/4) = 0.5 by coincidence at 45 deg, but the
        // midpoint of the angular range [0, pi/2] is pi/4, and splitting at
        // e.g. a quarter of the range is far from a quarter of the mass:
        let quarter_angle = FRAC_PI_2 * 0.25;
        let mass = lambertian_cdf_elevation(quarter_angle);
        assert!((mass - 0.25).abs() > 0.1, "mass {mass}");
    }

    #[test]
    fn world_space_binning_uses_patch_frame() {
        let onb = Onb::from_wu(Vec3::Y, Vec3::X); // floor facing +Y, u = +X
        let d = Vec3::new(0.0, 1.0, 0.0); // straight up
        let c = CylDir::from_world(d, &onb);
        assert!(approx_eq(c.r_sq, 0.0, EPS));
    }

    #[test]
    fn hemidir_clamps_rounding_noise() {
        let h = HemiDir::new(Vec3::new(1.0, 0.0, -1e-15));
        assert_eq!(h.cos_elevation(), 0.0);
    }
}
