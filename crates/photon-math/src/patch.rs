//! Planar quadrilateral patches with bilinear `(s, t)` parameterization.
//!
//! The defining polygons of a Photon scene are planar quads. Each carries a
//! bilinear parameterization used for (a) histogram binning of hit positions
//! and (b) reconstructing bin centers for viewing. The dissertation notes that
//! `(s, t)` "cannot be easily determined from an arbitrary point" on a general
//! patch and recovers them by recursive bisection inside the bin tree; for
//! planar quads we additionally provide a direct inversion
//! ([`Patch::st_of_point`]) that agrees with the bisection and is used by the
//! fast path (exact for parallelograms, Newton-refined for general planar
//! quads).

use crate::{Aabb, Onb, Ray, Vec3};

/// A planar quadrilateral `p00 → p10 → p11 → p01` (counter-clockwise seen from
/// the front, i.e. from the side its normal points toward).
///
/// Bilinear map: `P(s, t) = (1-s)(1-t) p00 + s(1-t) p10 + s t p11 + (1-s) t p01`.
#[derive(Clone, Copy, Debug)]
pub struct Patch {
    /// Corner at `(s, t) = (0, 0)`.
    pub p00: Vec3,
    /// Corner at `(s, t) = (1, 0)`.
    pub p10: Vec3,
    /// Corner at `(s, t) = (1, 1)`.
    pub p11: Vec3,
    /// Corner at `(s, t) = (0, 1)`.
    pub p01: Vec3,
}

/// Result of a ray/patch intersection.
#[derive(Clone, Copy, Debug)]
pub struct PatchHit {
    /// Ray parameter (distance for unit-length directions).
    pub t: f64,
    /// Bilinear `s` coordinate in `[0, 1]`.
    pub s: f64,
    /// Bilinear `t` coordinate in `[0, 1]` (named `v` to avoid clashing with
    /// the ray parameter).
    pub v: f64,
    /// World-space hit point.
    pub point: Vec3,
}

impl Patch {
    /// Creates a patch from four corners. Corners are expected to be planar;
    /// small deviations are tolerated (intersection uses the best-fit plane).
    pub fn new(p00: Vec3, p10: Vec3, p11: Vec3, p01: Vec3) -> Self {
        Patch { p00, p10, p11, p01 }
    }

    /// Axis-aligned rectangle helper: builds the patch spanning `origin`,
    /// `origin + e_s`, `origin + e_s + e_t`, `origin + e_t`.
    pub fn from_origin_edges(origin: Vec3, e_s: Vec3, e_t: Vec3) -> Self {
        Patch {
            p00: origin,
            p10: origin + e_s,
            p11: origin + e_s + e_t,
            p01: origin + e_t,
        }
    }

    /// The bilinear point at `(s, t)`.
    #[inline]
    pub fn point_at(&self, s: f64, t: f64) -> Vec3 {
        self.p00 * ((1.0 - s) * (1.0 - t))
            + self.p10 * (s * (1.0 - t))
            + self.p11 * (s * t)
            + self.p01 * ((1.0 - s) * t)
    }

    /// Unit normal of the best-fit plane (Newell's method), pointing toward
    /// the front side.
    pub fn normal(&self) -> Vec3 {
        // Newell's method is robust for slightly non-planar quads.
        let pts = [self.p00, self.p10, self.p11, self.p01];
        let mut n = Vec3::ZERO;
        for i in 0..4 {
            let a = pts[i];
            let b = pts[(i + 1) % 4];
            n.x += (a.y - b.y) * (a.z + b.z);
            n.y += (a.z - b.z) * (a.x + b.x);
            n.z += (a.x - b.x) * (a.y + b.y);
        }
        n.normalized()
    }

    /// Surface area (sum of the two triangle halves).
    pub fn area(&self) -> f64 {
        let t1 = (self.p10 - self.p00).cross(self.p11 - self.p00).length() * 0.5;
        let t2 = (self.p11 - self.p00).cross(self.p01 - self.p00).length() * 0.5;
        t1 + t2
    }

    /// Centroid (bilinear center).
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.point_at(0.5, 0.5)
    }

    /// Bounding box of the four corners.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points([self.p00, self.p10, self.p11, self.p01])
    }

    /// Local frame: `w` = normal, `u` anchored to the `s` edge so the angular
    /// histogram axes are stable across runs.
    pub fn frame(&self) -> Onb {
        Onb::from_wu(self.normal(), self.p10 - self.p00)
    }

    /// Ray intersection against the patch plane followed by bilinear
    /// containment, returning the nearest hit in `(t_min, t_max)`.
    ///
    /// Hits on either face are reported; callers decide what to do with
    /// back-face hits via the sign of `ray.dir · normal`.
    pub fn intersect(&self, ray: &Ray, t_min: f64, t_max: f64) -> Option<PatchHit> {
        let n = self.normal();
        let denom = ray.dir.dot(n);
        if denom.abs() < 1e-14 {
            return None; // Parallel to the plane.
        }
        let t = (self.p00 - ray.origin).dot(n) / denom;
        if t <= t_min || t >= t_max {
            return None;
        }
        let p = ray.at(t);
        let (s, v) = self.st_of_point(p)?;
        Some(PatchHit { t, s, v, point: p })
    }

    /// Inverts the bilinear map for a point on (or very near) the patch
    /// plane. Returns `None` when the point lies outside `[0,1]^2` beyond a
    /// small tolerance.
    ///
    /// Exact in one step for parallelograms; for general planar quads a few
    /// Newton iterations on the 2-D projected bilinear system are used.
    pub fn st_of_point(&self, p: Vec3) -> Option<(f64, f64)> {
        // Project everything into the patch plane's 2-D coordinates.
        let frame = self.frame();
        let to2d = |q: Vec3| {
            let l = frame.to_local(q - self.p00);
            (l.x, l.y)
        };
        let (a0, a1) = to2d(self.p00); // == (0, 0)
        let (b0, b1) = to2d(self.p10);
        let (c0, c1) = to2d(self.p11);
        let (d0, d1) = to2d(self.p01);
        let (px, py) = to2d(p);

        // Bilinear in 2-D: P(s,t) = A + s*B + t*D + s*t*E with
        // A = p00, B = p10-p00, D = p01-p00, E = p11-p10-p01+p00.
        let bx = b0 - a0;
        let by = b1 - a1;
        let dx = d0 - a0;
        let dy = d1 - a1;
        let ex = c0 - b0 - d0 + a0;
        let ey = c1 - b1 - d1 + a1;

        // Initial guess: solve the parallelogram part.
        let det = bx * dy - by * dx;
        if det.abs() < 1e-18 {
            return None; // Degenerate quad.
        }
        let mut s = ((px - a0) * dy - (py - a1) * dx) / det;
        let mut t = (bx * (py - a1) - by * (px - a0)) / det;

        // Newton refinement handles the s*t cross term of non-parallelogram
        // quads (converges in <= 4 iterations for convex planar quads).
        for _ in 0..4 {
            let fx = a0 + s * bx + t * dx + s * t * ex - px;
            let fy = a1 + s * by + t * dy + s * t * ey - py;
            if fx.abs() + fy.abs() < 1e-12 {
                break;
            }
            let j00 = bx + t * ex;
            let j01 = dx + s * ex;
            let j10 = by + t * ey;
            let j11 = dy + s * ey;
            let jd = j00 * j11 - j01 * j10;
            if jd.abs() < 1e-18 {
                break;
            }
            s -= (fx * j11 - fy * j01) / jd;
            t -= (j00 * fy - j10 * fx) / jd;
        }

        const TOL: f64 = 1e-9;
        if !(-TOL..=1.0 + TOL).contains(&s) || !(-TOL..=1.0 + TOL).contains(&t) {
            return None;
        }
        Some((s.clamp(0.0, 1.0), t.clamp(0.0, 1.0)))
    }

    /// Splits into the `(lo, hi)` halves of the `s` range — used by tests
    /// validating bin-tree spatial splits against real geometry.
    pub fn split_s(&self) -> (Patch, Patch) {
        let m0 = self.p00.lerp(self.p10, 0.5);
        let m1 = self.p01.lerp(self.p11, 0.5);
        (
            Patch::new(self.p00, m0, m1, self.p01),
            Patch::new(m0, self.p10, self.p11, m1),
        )
    }

    /// Splits into the `(lo, hi)` halves of the `t` range.
    pub fn split_t(&self) -> (Patch, Patch) {
        let m0 = self.p00.lerp(self.p01, 0.5);
        let m1 = self.p10.lerp(self.p11, 0.5);
        (
            Patch::new(self.p00, self.p10, m1, m0),
            Patch::new(m0, m1, self.p11, self.p01),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    fn unit_floor() -> Patch {
        // Floor in the xz plane, normal +y.
        Patch::from_origin_edges(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, -1.0),
        )
    }

    #[test]
    fn corners_map_to_unit_square() {
        let p = unit_floor();
        assert_eq!(p.point_at(0.0, 0.0), p.p00);
        assert_eq!(p.point_at(1.0, 0.0), p.p10);
        assert_eq!(p.point_at(1.0, 1.0), p.p11);
        assert_eq!(p.point_at(0.0, 1.0), p.p01);
    }

    #[test]
    fn normal_of_floor_points_up() {
        let n = unit_floor().normal();
        assert!(approx_eq(n.y, 1.0, EPS), "{n:?}");
    }

    #[test]
    fn area_of_unit_square() {
        assert!(approx_eq(unit_floor().area(), 1.0, EPS));
        // A 2x3 rectangle.
        let p = Patch::from_origin_edges(Vec3::ZERO, Vec3::X * 2.0, Vec3::Z * -3.0);
        assert!(approx_eq(p.area(), 6.0, EPS));
    }

    #[test]
    fn st_inversion_round_trip_parallelogram() {
        let p = Patch::from_origin_edges(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -2.0),
        );
        for &(s, t) in &[(0.0, 0.0), (1.0, 1.0), (0.25, 0.75), (0.5, 0.5), (0.9, 0.1)] {
            let q = p.point_at(s, t);
            let (s2, t2) = p.st_of_point(q).expect("inside");
            assert!(approx_eq(s2, s, 1e-9), "s {s} -> {s2}");
            assert!(approx_eq(t2, t, 1e-9), "t {t} -> {t2}");
        }
    }

    #[test]
    fn st_inversion_round_trip_trapezoid() {
        // Planar but not a parallelogram: needs the Newton refinement.
        let p = Patch::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(1.5, 0.0, 1.0),
            Vec3::new(0.5, 0.0, 1.0),
        );
        for &(s, t) in &[(0.1, 0.2), (0.5, 0.5), (0.8, 0.9), (0.0, 1.0)] {
            let q = p.point_at(s, t);
            let (s2, t2) = p.st_of_point(q).expect("inside");
            assert!(approx_eq(s2, s, 1e-7), "s {s} -> {s2}");
            assert!(approx_eq(t2, t, 1e-7), "t {t} -> {t2}");
        }
    }

    #[test]
    fn st_outside_returns_none() {
        let p = unit_floor();
        assert!(p.st_of_point(Vec3::new(2.0, 0.0, -0.5)).is_none());
        assert!(p.st_of_point(Vec3::new(-0.5, 0.0, -0.5)).is_none());
    }

    #[test]
    fn ray_hits_center() {
        let p = unit_floor();
        let r = Ray::new(Vec3::new(0.5, 1.0, -0.5), Vec3::new(0.0, -1.0, 0.0));
        let hit = p.intersect(&r, 1e-9, f64::INFINITY).expect("hit");
        assert!(approx_eq(hit.t, 1.0, EPS));
        assert!(approx_eq(hit.s, 0.5, EPS));
        assert!(approx_eq(hit.v, 0.5, EPS));
    }

    #[test]
    fn ray_misses_outside_quad() {
        let p = unit_floor();
        let r = Ray::new(Vec3::new(1.5, 1.0, -0.5), Vec3::new(0.0, -1.0, 0.0));
        assert!(p.intersect(&r, 1e-9, f64::INFINITY).is_none());
    }

    #[test]
    fn ray_parallel_misses() {
        let p = unit_floor();
        let r = Ray::new(Vec3::new(0.5, 1.0, 0.0), Vec3::X);
        assert!(p.intersect(&r, 1e-9, f64::INFINITY).is_none());
    }

    #[test]
    fn ray_respects_t_window() {
        let p = unit_floor();
        let r = Ray::new(Vec3::new(0.5, 1.0, -0.5), Vec3::new(0.0, -1.0, 0.0));
        assert!(p.intersect(&r, 1e-9, 0.5).is_none());
        assert!(p.intersect(&r, 1.5, 2.0).is_none());
    }

    #[test]
    fn splits_cover_parent_area() {
        let p = unit_floor();
        let (a, b) = p.split_s();
        assert!(approx_eq(a.area() + b.area(), p.area(), EPS));
        let (c, d) = p.split_t();
        assert!(approx_eq(c.area() + d.area(), p.area(), EPS));
        // Sub-patch midpoints land where the parent parameterization says.
        assert_eq!(a.point_at(1.0, 0.0), p.point_at(0.5, 0.0));
        assert_eq!(c.point_at(0.0, 1.0), p.point_at(0.0, 0.5));
    }

    #[test]
    fn frame_w_matches_normal() {
        let p = unit_floor();
        let f = p.frame();
        assert!(approx_eq(f.w.dot(p.normal()), 1.0, EPS));
        // u anchored to the s edge.
        assert!(approx_eq(f.u.dot((p.p10 - p.p00).normalized()), 1.0, EPS));
    }
}
