//! Rays with precomputed reciprocal directions for fast box tests.

use crate::Vec3;

/// A half-line `origin + t * dir`, `t >= 0`.
///
/// The reciprocal direction is precomputed once so axis-aligned-box slab tests
/// (the inner loop of octree traversal) cost three multiplies per axis instead
/// of three divides.
#[derive(Clone, Copy, Debug)]
pub struct Ray {
    /// Start point of the ray.
    pub origin: Vec3,
    /// Direction; not required to be unit length, but photon transport always
    /// uses unit directions so `t` equals distance.
    pub dir: Vec3,
    /// Componentwise reciprocal of `dir` (`+-inf` where `dir` is zero).
    pub inv_dir: Vec3,
}

impl Ray {
    /// Creates a ray. `dir` should normally be unit length.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir,
            inv_dir: Vec3::new(1.0 / dir.x, 1.0 / dir.y, 1.0 / dir.z),
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Returns the ray advanced `eps` along its direction.
    ///
    /// Used when re-emitting a reflected photon so it does not immediately
    /// re-intersect the surface it just left.
    #[inline]
    pub fn nudged(&self, eps: f64) -> Ray {
        Ray {
            origin: self.at(eps),
            dir: self.dir,
            inv_dir: self.inv_dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, EPS};

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 2.0, 3.0), Vec3::X);
        assert_eq!(r.at(0.0), r.origin);
        assert_eq!(r.at(2.5), Vec3::new(3.5, 2.0, 3.0));
    }

    #[test]
    fn inv_dir_is_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 0.5));
        assert!(approx_eq(r.inv_dir.x, 0.5, EPS));
        assert!(approx_eq(r.inv_dir.y, -0.25, EPS));
        assert!(approx_eq(r.inv_dir.z, 2.0, EPS));
    }

    #[test]
    fn zero_component_gives_infinite_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, -1.0));
        assert!(r.inv_dir.y.is_infinite());
    }

    #[test]
    fn nudged_moves_origin_only() {
        let r = Ray::new(Vec3::ZERO, Vec3::Z);
        let n = r.nudged(1e-3);
        assert!(approx_eq(n.origin.z, 1e-3, EPS));
        assert_eq!(n.dir, r.dir);
    }
}
