//! The test geometries of the dissertation's evaluation (ch. 5, Table 5.1).
//!
//! | scene | defining polygons | character |
//! |-------|-------------------|-----------|
//! | [`cornell_box`] | 30 | small room, floating mirror in the center |
//! | [`harpsichord_room`] | 100 | skylights + collimated sun, mirrored music shelf, harpsichord |
//! | [`computer_lab`] | 2000 | many small diffuse polygons (desks, monitors, chairs) |
//!
//! The original scene files are lost; these are procedural reconstructions
//! with the same defining-polygon counts, material mix and luminaire types
//! (see DESIGN.md, substitution #4). Each scene ships a recommended
//! [`ViewSpec`] so the renders of Figs 4.7/4.8/5.1 are reproducible.
//!
//! [`sun_room`] is the small directional-lighting demo behind Fig 4.4
//! (penumbra width growing with occluder distance).

#![deny(missing_docs)]

pub mod builder;

use builder::{outward_box, rect_panel_xy, rect_panel_xz, rect_panel_yz, room_shell};
use photon_geom::{Luminaire, Material, Scene, SurfacePatch};
use photon_math::{Rgb, Vec3};

/// A recommended viewpoint for rendering a scene.
#[derive(Clone, Copy, Debug)]
pub struct ViewSpec {
    /// Eye position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Vertical field of view, degrees.
    pub vfov_deg: f64,
}

impl ViewSpec {
    /// This view orbited about its target: the eye rotates in the ground
    /// plane to `phase01` (fraction of a full turn) at `radius_scale`
    /// times the original eye-target distance, keeping the eye's height.
    ///
    /// The shared camera-sweep generator for walkthrough-style clients
    /// (serving benchmarks, examples, acceptance tests): every view in the
    /// sweep still looks at the scene's landmark.
    pub fn orbited(&self, phase01: f64, radius_scale: f64) -> ViewSpec {
        let radius = (self.eye - self.target).length() * radius_scale;
        let phase = phase01 * std::f64::consts::TAU;
        ViewSpec {
            eye: self.target
                + Vec3::new(
                    radius * phase.cos(),
                    self.eye.y - self.target.y,
                    radius * phase.sin(),
                ),
            ..*self
        }
    }
}

/// The three evaluation scenes, for parameter sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestScene {
    /// 30-polygon Cornell Box with a floating mirror.
    CornellBox,
    /// 100-polygon Harpsichord Practice Room.
    HarpsichordRoom,
    /// ~2000-polygon Computer Laboratory.
    ComputerLab,
}

impl TestScene {
    /// All three scenes in paper order.
    pub const ALL: [TestScene; 3] = [
        TestScene::CornellBox,
        TestScene::HarpsichordRoom,
        TestScene::ComputerLab,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TestScene::CornellBox => "Cornell Box",
            TestScene::HarpsichordRoom => "Harpsichord Practice Room",
            TestScene::ComputerLab => "Computer Laboratory",
        }
    }

    /// Builds the scene.
    pub fn build(self) -> Scene {
        match self {
            TestScene::CornellBox => cornell_box(),
            TestScene::HarpsichordRoom => harpsichord_room(),
            TestScene::ComputerLab => computer_lab(),
        }
    }

    /// Recommended viewpoint.
    pub fn view(self) -> ViewSpec {
        match self {
            TestScene::CornellBox => ViewSpec {
                eye: Vec3::new(2.78, 2.73, -7.5),
                target: Vec3::new(2.78, 2.73, 2.8),
                up: Vec3::Y,
                vfov_deg: 40.0,
            },
            TestScene::HarpsichordRoom => ViewSpec {
                eye: Vec3::new(1.0, 1.7, -4.2),
                target: Vec3::new(3.0, 1.2, 2.0),
                up: Vec3::Y,
                vfov_deg: 55.0,
            },
            TestScene::ComputerLab => ViewSpec {
                eye: Vec3::new(1.0, 2.2, -1.0),
                target: Vec3::new(6.0, 1.0, 6.0),
                up: Vec3::Y,
                vfov_deg: 60.0,
            },
        }
    }
}

/// The Cornell Box with a floating mirror (Fig 4.8): exactly 30 defining
/// polygons.
///
/// Inventory: 6 room walls (left red, right green, rest white), 1 ceiling
/// light, tall block (5 faces), short block (5), floating mirror plate
/// (front + back), 4 mirror edge strips, 4 ceiling trim strips, 1 door
/// panel, 2 picture frames. 6+1+5+5+2+4+4+1+2 = 30.
pub fn cornell_box() -> Scene {
    let mut p: Vec<SurfacePatch> = Vec::new();
    let white = Material::matte(Rgb::new(0.73, 0.73, 0.73));
    let red = Material::matte(Rgb::new(0.63, 0.065, 0.05));
    let green = Material::matte(Rgb::new(0.14, 0.45, 0.09));

    // Room: 5.56m cube (the classic Cornell dimensions, meters x10^-1).
    let s = 5.56;
    room_shell(
        &mut p,
        Vec3::ZERO,
        Vec3::new(s, s, s),
        [
            white.clone_m(), // floor
            white.clone_m(), // ceiling
            white.clone_m(), // back (z max)
            white.clone_m(), // front (z min)
            red.clone_m(),   // left (x min)
            green.clone_m(), // right (x max)
        ],
    );

    // Ceiling light: 1.3 x 1.05 panel at the center, facing down.
    let light_id = p.len() as u32;
    p.push(rect_panel_xz(
        Vec3::new(2.13, s - 0.01, 2.27),
        1.30,
        1.05,
        false,
        Material::emitter(Rgb::new(1.0, 0.85, 0.6)),
    ));

    // Tall block (5 visible faces: top + 4 sides).
    outward_box(
        &mut p,
        Vec3::new(2.65, 0.0, 2.96),
        Vec3::new(4.23, 3.30, 4.56),
        &white,
        true, // skip bottom
    );
    // Short block.
    outward_box(
        &mut p,
        Vec3::new(0.85, 0.0, 0.65),
        Vec3::new(2.40, 1.65, 2.25),
        &white,
        true,
    );

    // Floating mirror plate in the center of the room: front + back.
    let mirror = Material::mirror(0.92);
    p.push(rect_panel_xy(
        Vec3::new(1.9, 2.2, 2.78),
        1.8,
        1.4,
        false, // front faces -z (toward the viewer)
        mirror,
    ));
    p.push(rect_panel_xy(
        Vec3::new(1.9, 2.2, 2.80),
        1.8,
        1.4,
        true,
        white.clone_m(),
    ));
    // Mirror edge strips (4 thin white quads around the plate).
    let strip = white.clone_m();
    p.push(rect_panel_xy(
        Vec3::new(1.9, 2.17, 2.79),
        1.8,
        0.03,
        false,
        strip.clone_m(),
    ));
    p.push(rect_panel_xy(
        Vec3::new(1.9, 3.60, 2.79),
        1.8,
        0.03,
        false,
        strip.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(1.87, 2.2, 2.79),
        1.4,
        0.03,
        false,
        strip.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(3.70, 2.2, 2.79),
        1.4,
        0.03,
        false,
        strip.clone_m(),
    ));

    // Ceiling trim strips (4).
    p.push(rect_panel_xz(
        Vec3::new(0.0, s - 0.02, 0.0),
        s,
        0.15,
        false,
        white.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(0.0, s - 0.02, s - 0.15),
        s,
        0.15,
        false,
        white.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(0.0, s - 0.02, 0.15),
        0.15,
        s - 0.3,
        false,
        white.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(s - 0.15, s - 0.02, 0.15),
        0.15,
        s - 0.3,
        false,
        white.clone_m(),
    ));

    // Door panel on the front wall, two picture frames on the side walls.
    p.push(rect_panel_xy(
        Vec3::new(4.2, 0.0, 0.02),
        1.0,
        2.2,
        true,
        white.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(0.02, 2.0, 1.0),
        1.2,
        1.6,
        true,
        Material::matte(Rgb::new(0.4, 0.35, 0.6)),
    ));
    p.push(rect_panel_yz(
        Vec3::new(s - 0.02, 2.0, 3.0),
        1.2,
        1.6,
        false,
        Material::matte(Rgb::new(0.6, 0.5, 0.3)),
    ));

    let lum = Luminaire {
        patch_id: light_id,
        power: Rgb::new(120.0, 100.0, 75.0),
        collimation: 1.0,
    };
    Scene::new(p, vec![lum])
}

/// The Harpsichord Practice Room (Fig 4.7): exactly 100 defining polygons.
///
/// A wooden room with two ceiling skylights driven by a collimated sun
/// (0.5° disc, the paper's model), a mirrored music shelf, a harpsichord
/// (body, lid, legs, keyboard), a bench, and wall paneling.
pub fn harpsichord_room() -> Scene {
    let mut p: Vec<SurfacePatch> = Vec::new();
    let wall = Material::matte(Rgb::new(0.65, 0.6, 0.5));
    let wood = Material::glossy(Rgb::new(0.42, 0.26, 0.15), 0.08, 40.0);
    let dark_wood = Material::glossy(Rgb::new(0.3, 0.18, 0.1), 0.1, 60.0);
    let floor_mat = Material::glossy(Rgb::new(0.5, 0.38, 0.25), 0.06, 25.0);

    // Room shell 7 x 3.2 x 6 m. (6 polys)
    let (w, h, d) = (7.0, 3.2, 6.0);
    room_shell(
        &mut p,
        Vec3::ZERO,
        Vec3::new(w, h, d),
        [
            floor_mat,      // floor
            wall.clone_m(), // ceiling
            wall.clone_m(), // back
            wall.clone_m(), // front
            wall.clone_m(), // left
            wall.clone_m(), // right
        ],
    );

    // Two skylights in the ceiling, emitting collimated sunlight. (2)
    let sun = Rgb::new(1.0, 0.95, 0.85);
    let sky1 = p.len() as u32;
    p.push(rect_panel_xz(
        Vec3::new(1.2, h - 0.01, 1.5),
        1.2,
        0.9,
        false,
        Material::emitter(sun),
    ));
    let sky2 = p.len() as u32;
    p.push(rect_panel_xz(
        Vec3::new(4.4, h - 0.01, 1.5),
        1.2,
        0.9,
        false,
        Material::emitter(sun),
    ));
    // Skylight frames: 4 strips each. (8)
    for &x0 in &[1.2, 4.4] {
        p.push(rect_panel_xz(
            Vec3::new(x0 - 0.08, h - 0.02, 1.42),
            1.36,
            0.08,
            false,
            wood.clone_m(),
        ));
        p.push(rect_panel_xz(
            Vec3::new(x0 - 0.08, h - 0.02, 2.40),
            1.36,
            0.08,
            false,
            wood.clone_m(),
        ));
        p.push(rect_panel_xz(
            Vec3::new(x0 - 0.08, h - 0.02, 1.50),
            0.08,
            0.90,
            false,
            wood.clone_m(),
        ));
        p.push(rect_panel_xz(
            Vec3::new(x0 + 1.20, h - 0.02, 1.50),
            0.08,
            0.90,
            false,
            wood.clone_m(),
        ));
    }

    // Harpsichord body: a box on 4 square legs. (5 + 16)
    outward_box(
        &mut p,
        Vec3::new(2.2, 0.7, 2.6),
        Vec3::new(4.6, 1.0, 3.7),
        &dark_wood,
        true,
    );
    for (lx, lz) in [(2.3, 2.7), (4.4, 2.7), (2.3, 3.5), (4.4, 3.5)] {
        // 4 faces per leg (no top/bottom).
        outward_box_sides(
            &mut p,
            Vec3::new(lx, 0.0, lz),
            Vec3::new(lx + 0.1, 0.7, lz + 0.1),
            &dark_wood,
        );
    }
    // Raised lid (1) propped open plus lid stick (1). (2)
    p.push(SurfacePatch::new(
        photon_math::Patch::new(
            Vec3::new(2.2, 1.0, 3.7),
            Vec3::new(4.6, 1.0, 3.7),
            Vec3::new(4.6, 2.2, 4.5),
            Vec3::new(2.2, 2.2, 4.5),
        ),
        dark_wood.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(3.4, 1.0, 3.7),
        0.9,
        0.05,
        false,
        wood.clone_m(),
    ));
    // Keyboard shelf + two key banks. (3)
    p.push(rect_panel_xz(
        Vec3::new(2.4, 0.95, 2.35),
        2.0,
        0.25,
        true,
        wood.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(2.45, 0.97, 2.38),
        0.9,
        0.18,
        true,
        Material::matte(Rgb::gray(0.9)),
    ));
    p.push(rect_panel_xz(
        Vec3::new(3.45, 0.97, 2.38),
        0.9,
        0.18,
        true,
        Material::matte(Rgb::gray(0.15)),
    ));

    // Mirrored music shelf on the back wall: mirror + shelf board + 2 sides
    // + top. (5)
    p.push(rect_panel_xy(
        Vec3::new(2.6, 1.4, d - 0.05),
        1.6,
        1.0,
        false, // faces -z, into the room
        Material::mirror(0.9),
    ));
    p.push(rect_panel_xz(
        Vec3::new(2.6, 1.35, d - 0.35),
        1.6,
        0.3,
        true,
        wood.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(2.6, 1.35, d - 0.35),
        1.1,
        0.3,
        true,
        wood.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(4.2, 1.35, d - 0.35),
        1.1,
        0.3,
        false,
        wood.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(2.6, 2.45, d - 0.35),
        1.6,
        0.3,
        false,
        wood.clone_m(),
    ));

    // Bench: top + 4 legs x 4 faces. (1 + 16)
    p.push(rect_panel_xz(
        Vec3::new(3.0, 0.45, 1.4),
        1.0,
        0.4,
        true,
        wood.clone_m(),
    ));
    for (lx, lz) in [(3.05, 1.45), (3.9, 1.45), (3.05, 1.72), (3.9, 1.72)] {
        outward_box_sides(
            &mut p,
            Vec3::new(lx, 0.0, lz),
            Vec3::new(lx + 0.06, 0.45, lz + 0.06),
            &wood,
        );
    }

    // Wall paneling: wainscot boards along the four walls. (12)
    for i in 0..4 {
        let x0 = 0.02 + i as f64 * 1.74;
        p.push(rect_panel_yz(
            Vec3::new(0.02, 0.1, 0.3 + i as f64 * 1.4),
            1.0,
            1.2,
            true,
            wood.clone_m(),
        ));
        p.push(rect_panel_yz(
            Vec3::new(w - 0.02, 0.1, 0.3 + i as f64 * 1.4),
            1.0,
            1.2,
            false,
            wood.clone_m(),
        ));
        p.push(rect_panel_xy(
            Vec3::new(x0, 0.1, 0.02),
            1.5,
            1.0,
            true,
            wood.clone_m(),
        ));
    }
    // Five ceiling beams. (5)
    for i in 0..5 {
        p.push(rect_panel_xz(
            Vec3::new(0.0, h - 0.05, 0.6 + i as f64 * 1.2),
            w,
            0.18,
            false,
            dark_wood.clone_m(),
        ));
    }
    // Back-wall wainscot. (4)
    for i in 0..4 {
        p.push(rect_panel_xy(
            Vec3::new(0.2 + i as f64 * 1.7, 0.1, d - 0.02),
            1.5,
            1.0,
            false,
            wood.clone_m(),
        ));
    }
    // Skirting boards along the four walls. (4)
    p.push(rect_panel_xy(
        Vec3::new(0.0, 0.0, 0.04),
        w,
        0.1,
        true,
        dark_wood.clone_m(),
    ));
    p.push(rect_panel_xy(
        Vec3::new(0.0, 0.0, d - 0.04),
        w,
        0.1,
        false,
        dark_wood.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(0.04, 0.0, 0.0),
        0.1,
        d,
        true,
        dark_wood.clone_m(),
    ));
    p.push(rect_panel_yz(
        Vec3::new(w - 0.04, 0.0, 0.0),
        0.1,
        d,
        false,
        dark_wood.clone_m(),
    ));
    // Two framed pictures and four window panes on the front wall. (6)
    p.push(rect_panel_yz(
        Vec3::new(0.03, 1.6, 2.0),
        0.9,
        1.2,
        true,
        Material::matte(Rgb::new(0.5, 0.4, 0.3)),
    ));
    p.push(rect_panel_yz(
        Vec3::new(w - 0.03, 1.6, 3.4),
        0.9,
        1.2,
        false,
        Material::matte(Rgb::new(0.3, 0.4, 0.5)),
    ));
    for i in 0..4 {
        p.push(rect_panel_xy(
            Vec3::new(1.8 + i as f64 * 0.55, 1.4, 0.03),
            0.5,
            0.9,
            true,
            Material::matte(Rgb::new(0.55, 0.6, 0.7)),
        ));
    }

    // Music stand on the shelf: 2 panels; rug on the floor: 1; door: 1;
    // window frame on front wall: 1; total to reach exactly 100 below.
    p.push(SurfacePatch::new(
        photon_math::Patch::new(
            Vec3::new(3.1, 1.45, d - 0.45),
            Vec3::new(3.7, 1.45, d - 0.45),
            Vec3::new(3.7, 1.95, d - 0.25),
            Vec3::new(3.1, 1.95, d - 0.25),
        ),
        Material::matte(Rgb::gray(0.85)),
    ));
    p.push(rect_panel_yz(
        Vec3::new(3.38, 1.0, d - 0.42),
        0.45,
        0.06,
        false,
        wood.clone_m(),
    ));
    p.push(rect_panel_xz(
        Vec3::new(2.0, 0.01, 1.0),
        3.0,
        2.0,
        false,
        Material::matte(Rgb::new(0.45, 0.12, 0.12)),
    ));
    p.push(rect_panel_xy(
        Vec3::new(0.6, 0.0, 0.02),
        0.9,
        2.1,
        true,
        dark_wood.clone_m(),
    ));
    p.push(rect_panel_xy(
        Vec3::new(5.5, 1.0, 0.02),
        1.1,
        1.3,
        true,
        wall.clone_m(),
    ));

    // The paper's sun: skylights collimated to a 0.5-degree disc.
    let lums = vec![
        Luminaire {
            patch_id: sky1,
            power: Rgb::new(400.0, 380.0, 340.0),
            collimation: 0.005,
        },
        Luminaire {
            patch_id: sky2,
            power: Rgb::new(400.0, 380.0, 340.0),
            collimation: 0.005,
        },
        // Plus a dim diffuse-sky component through the same openings.
        Luminaire {
            patch_id: sky1,
            power: Rgb::new(40.0, 45.0, 60.0),
            collimation: 1.0,
        },
        Luminaire {
            patch_id: sky2,
            power: Rgb::new(40.0, 45.0, 60.0),
            collimation: 1.0,
        },
    ];
    Scene::new(p, lums)
}

/// The Computer Laboratory (Fig 5.1): ~2000 defining polygons.
///
/// A 10x10 grid of workstations (desk top, 4 aprons, monitor box of 5
/// faces, screen, keyboard, chair seat/back + 4 legs of 1 face pair each),
/// fluorescent ceiling panels, room shell.
pub fn computer_lab() -> Scene {
    let mut p: Vec<SurfacePatch> = Vec::new();
    let wall = Material::matte(Rgb::gray(0.7));
    let floor_mat = Material::matte(Rgb::new(0.35, 0.37, 0.4));
    let desk_mat = Material::glossy(Rgb::new(0.45, 0.35, 0.25), 0.05, 20.0);
    let plastic = Material::matte(Rgb::gray(0.55));
    let screen = Material::glossy(Rgb::new(0.05, 0.08, 0.1), 0.25, 120.0);

    // Room shell 24 x 3 x 24. (6)
    let (w, h, d) = (24.0, 3.0, 24.0);
    room_shell(
        &mut p,
        Vec3::ZERO,
        Vec3::new(w, h, d),
        [
            floor_mat,
            wall.clone_m(),
            wall.clone_m(),
            wall.clone_m(),
            wall.clone_m(),
            wall.clone_m(),
        ],
    );

    // 5 x 5 grid of ceiling light panels. (25)
    let mut lums = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            let id = p.len() as u32;
            p.push(rect_panel_xz(
                Vec3::new(2.0 + i as f64 * 4.6, h - 0.01, 2.0 + j as f64 * 4.6),
                1.2,
                2.4,
                false,
                Material::emitter(Rgb::new(0.9, 0.95, 1.0)),
            ));
            lums.push(Luminaire {
                patch_id: id,
                power: Rgb::new(40.0, 42.0, 45.0),
                collimation: 1.0,
            });
        }
    }

    // 10 x 10 workstations, ~19-20 polys each.
    for i in 0..10 {
        for j in 0..10 {
            let x = 1.2 + i as f64 * 2.25;
            let z = 1.8 + j as f64 * 2.1;
            // Desk top (1) + 4 aprons (4).
            p.push(rect_panel_xz(
                Vec3::new(x, 0.75, z),
                1.4,
                0.8,
                true,
                desk_mat.clone_m(),
            ));
            outward_box_sides(
                &mut p,
                Vec3::new(x, 0.0, z),
                Vec3::new(x + 1.4, 0.73, z + 0.8),
                &desk_mat,
            );
            // Monitor: 5-face box + screen panel. (6)
            outward_box(
                &mut p,
                Vec3::new(x + 0.4, 0.77, z + 0.35),
                Vec3::new(x + 1.0, 1.25, z + 0.75),
                &plastic,
                true,
            );
            p.push(rect_panel_xy(
                Vec3::new(x + 0.45, 0.82, z + 0.345),
                0.5,
                0.38,
                false,
                screen.clone_m(),
            ));
            // Keyboard (1) and mouse pad (1).
            p.push(rect_panel_xz(
                Vec3::new(x + 0.45, 0.76, z + 0.05),
                0.5,
                0.2,
                true,
                plastic.clone_m(),
            ));
            p.push(rect_panel_xz(
                Vec3::new(x + 1.05, 0.755, z + 0.08),
                0.22,
                0.18,
                true,
                Material::matte(Rgb::new(0.2, 0.25, 0.5)),
            ));
            // Chair: seat + back + 4 single-quad legs. (6)
            p.push(rect_panel_xz(
                Vec3::new(x + 0.45, 0.45, z - 0.6),
                0.5,
                0.5,
                true,
                plastic.clone_m(),
            ));
            p.push(rect_panel_xy(
                Vec3::new(x + 0.45, 0.45, z - 0.62),
                0.5,
                0.5,
                true,
                plastic.clone_m(),
            ));
            for (lx, lz) in [
                (x + 0.47, z - 0.58),
                (x + 0.91, z - 0.58),
                (x + 0.47, z - 0.14),
                (x + 0.91, z - 0.14),
            ] {
                p.push(rect_panel_xy(
                    Vec3::new(lx, 0.0, lz),
                    0.04,
                    0.44,
                    true,
                    plastic.clone_m(),
                ));
            }
        }
    }

    Scene::new(p, lums)
}

/// Small directional-lighting demo (Fig 4.4): a floor, a square occluder at
/// `occluder_height`, and a sun panel overhead collimated to `collimation`.
///
/// Used by the penumbra experiment: the shadow edge blurs as the occluder
/// rises, and sharpens as collimation tightens.
pub fn sun_room(occluder_height: f64, collimation: f64) -> Scene {
    let mut p = Vec::new();
    let white = Material::matte(Rgb::gray(0.8));
    // Floor 10 x 10.
    p.push(rect_panel_xz(
        Vec3::new(-5.0, 0.0, -5.0),
        10.0,
        10.0,
        true,
        white.clone_m(),
    ));
    // Occluder: 1 x 1 plate centered at origin.
    p.push(rect_panel_xz(
        Vec3::new(-0.5, occluder_height, -0.5),
        1.0,
        1.0,
        true,
        Material::matte(Rgb::gray(0.3)),
    ));
    p.push(rect_panel_xz(
        Vec3::new(-0.5, occluder_height + 0.001, -0.5),
        1.0,
        1.0,
        false,
        Material::matte(Rgb::gray(0.3)),
    ));
    // Sun panel high above, facing down.
    let sun_id = p.len() as u32;
    p.push(rect_panel_xz(
        Vec3::new(-5.0, 8.0, -5.0),
        10.0,
        10.0,
        false,
        Material::emitter(Rgb::WHITE),
    ));
    Scene::new(
        p,
        vec![Luminaire {
            patch_id: sun_id,
            power: Rgb::gray(100.0),
            collimation,
        }],
    )
}

/// Helper: 4 side faces of an axis-aligned box (no top/bottom) — table and
/// bench legs.
fn outward_box_sides(p: &mut Vec<SurfacePatch>, min: Vec3, max: Vec3, mat: &Material) {
    builder::outward_box_faces(p, min, max, mat, [false, false, true, true, true, true]);
}

/// Extension trait making material cloning read naturally in builders.
trait CloneM {
    fn clone_m(&self) -> Material;
}
impl CloneM for Material {
    fn clone_m(&self) -> Material {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cornell_box_has_exactly_30_defining_polygons() {
        let s = cornell_box();
        assert_eq!(s.polygon_count(), 30, "Table 5.1 row 1");
        assert_eq!(s.luminaires().len(), 1);
    }

    #[test]
    fn harpsichord_room_has_exactly_100_defining_polygons() {
        let s = harpsichord_room();
        assert_eq!(s.polygon_count(), 100, "Table 5.1 row 2");
        // Sun skylights are collimated to the paper's 0.5-degree disc.
        assert!(s.luminaires().iter().any(|l| l.collimation == 0.005));
    }

    #[test]
    fn computer_lab_has_about_2000_defining_polygons() {
        let s = computer_lab();
        let n = s.polygon_count();
        assert!((1900..=2100).contains(&n), "Table 5.1 row 3: {n}");
        assert_eq!(s.luminaires().len(), 25);
    }

    #[test]
    fn cornell_box_contains_a_mirror() {
        let s = cornell_box();
        let mirrors = s
            .patches()
            .iter()
            .filter(|p| p.material.kind() == photon_geom::SurfaceKind::Mirror)
            .count();
        assert_eq!(mirrors, 1);
    }

    #[test]
    fn all_scene_materials_are_physical() {
        for t in TestScene::ALL {
            let s = t.build();
            for (i, sp) in s.patches().iter().enumerate() {
                assert!(sp.material.is_physical(), "{}: patch {i}", t.name());
                assert!(sp.area > 0.0, "{}: degenerate patch {i}", t.name());
            }
        }
    }

    #[test]
    fn room_shell_normals_point_inward() {
        // Centers of the walls of each scene's shell should have normals
        // pointing toward the room interior (toward the scene center).
        for t in TestScene::ALL {
            let s = t.build();
            let c = s.bounds().center();
            for (i, sp) in s.patches().iter().take(6).enumerate() {
                let to_center = (c - sp.patch.center()).normalized();
                assert!(
                    sp.frame.w.dot(to_center) > 0.0,
                    "{}: wall {i} faces outward",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn sun_room_builds_and_collimates() {
        let s = sun_room(1.0, 0.005);
        assert_eq!(s.luminaires()[0].collimation, 0.005);
        assert_eq!(s.polygon_count(), 4);
    }

    #[test]
    fn orbited_views_keep_target_distance_and_height() {
        let v = TestScene::CornellBox.view();
        let r = (v.eye - v.target).length();
        for i in 0..8 {
            let o = v.orbited(i as f64 / 8.0, 1.0);
            assert!(
                ((o.eye - o.target).length() - r).abs() < 1e-9,
                "orbit {i} changed radius"
            );
            assert!((o.eye.y - v.eye.y).abs() < 1e-9, "orbit {i} changed height");
            assert_eq!(o.target, v.target);
        }
        let far = v.orbited(0.25, 2.0);
        assert!(((far.eye - far.target).length() - 2.0 * r).abs() < 1e-9);
    }

    #[test]
    fn views_look_into_the_scenes() {
        for t in TestScene::ALL {
            let v = t.view();
            let s = t.build();
            // The target must be inside the scene bounds.
            assert!(s.bounds().contains(v.target), "{}", t.name());
        }
    }
}
