//! Axis-aligned construction helpers with controlled winding.
//!
//! `Patch::from_origin_edges(o, e1, e2)` has Newell normal `e1 × e2`; these
//! helpers pick edge orders so callers state the *facing* they want instead
//! of reasoning about cross products.

use photon_geom::{Material, SurfacePatch};
use photon_math::{Patch, Vec3};

/// Horizontal rectangle in the XZ plane at `origin.y`, spanning `(sx, sz)`.
/// `up = true` faces +y.
pub fn rect_panel_xz(origin: Vec3, sx: f64, sz: f64, up: bool, mat: Material) -> SurfacePatch {
    let ex = Vec3::new(sx, 0.0, 0.0);
    let ez = Vec3::new(0.0, 0.0, sz);
    let patch = if up {
        Patch::from_origin_edges(origin, ez, ex) // z × x = +y
    } else {
        Patch::from_origin_edges(origin, ex, ez) // x × z = -y
    };
    SurfacePatch::new(patch, mat)
}

/// Vertical rectangle in the XY plane at `origin.z`, spanning `(sx, sy)`.
/// `forward = true` faces +z.
pub fn rect_panel_xy(origin: Vec3, sx: f64, sy: f64, forward: bool, mat: Material) -> SurfacePatch {
    let ex = Vec3::new(sx, 0.0, 0.0);
    let ey = Vec3::new(0.0, sy, 0.0);
    let patch = if forward {
        Patch::from_origin_edges(origin, ex, ey) // x × y = +z
    } else {
        Patch::from_origin_edges(origin, ey, ex) // y × x = -z
    };
    SurfacePatch::new(patch, mat)
}

/// Vertical rectangle in the YZ plane at `origin.x`, spanning `(sy, sz)`.
/// `right = true` faces +x.
pub fn rect_panel_yz(origin: Vec3, sy: f64, sz: f64, right: bool, mat: Material) -> SurfacePatch {
    let ey = Vec3::new(0.0, sy, 0.0);
    let ez = Vec3::new(0.0, 0.0, sz);
    let patch = if right {
        Patch::from_origin_edges(origin, ey, ez) // y × z = +x
    } else {
        Patch::from_origin_edges(origin, ez, ey) // z × y = -x
    };
    SurfacePatch::new(patch, mat)
}

/// The six inward-facing walls of a room `[min, max]`, pushed in the order
/// floor, ceiling, back (z max), front (z min), left (x min), right (x max),
/// with the matching material from `mats`.
pub fn room_shell(p: &mut Vec<SurfacePatch>, min: Vec3, max: Vec3, mats: [Material; 6]) {
    let e = max - min;
    let [floor, ceiling, back, front, left, right] = mats;
    p.push(rect_panel_xz(min, e.x, e.z, true, floor));
    p.push(rect_panel_xz(
        Vec3::new(min.x, max.y, min.z),
        e.x,
        e.z,
        false,
        ceiling,
    ));
    p.push(rect_panel_xy(
        Vec3::new(min.x, min.y, max.z),
        e.x,
        e.y,
        false,
        back,
    ));
    p.push(rect_panel_xy(min, e.x, e.y, true, front));
    p.push(rect_panel_yz(min, e.y, e.z, true, left));
    p.push(rect_panel_yz(
        Vec3::new(max.x, min.y, min.z),
        e.y,
        e.z,
        false,
        right,
    ));
}

/// Outward-facing faces of a box `[min, max]`; `face_on[i]` selects which of
/// `[bottom, top, front(-z), back(+z), left(-x), right(+x)]` to emit.
pub fn outward_box_faces(
    p: &mut Vec<SurfacePatch>,
    min: Vec3,
    max: Vec3,
    mat: &Material,
    face_on: [bool; 6],
) {
    let e = max - min;
    if face_on[0] {
        p.push(rect_panel_xz(min, e.x, e.z, false, *mat)); // bottom faces -y
    }
    if face_on[1] {
        p.push(rect_panel_xz(
            Vec3::new(min.x, max.y, min.z),
            e.x,
            e.z,
            true,
            *mat,
        ));
    }
    if face_on[2] {
        p.push(rect_panel_xy(min, e.x, e.y, false, *mat)); // front faces -z
    }
    if face_on[3] {
        p.push(rect_panel_xy(
            Vec3::new(min.x, min.y, max.z),
            e.x,
            e.y,
            true,
            *mat,
        ));
    }
    if face_on[4] {
        p.push(rect_panel_yz(min, e.y, e.z, false, *mat)); // left faces -x
    }
    if face_on[5] {
        p.push(rect_panel_yz(
            Vec3::new(max.x, min.y, min.z),
            e.y,
            e.z,
            true,
            *mat,
        ));
    }
}

/// Outward box; `skip_bottom` omits the face resting on the floor
/// (5 faces), otherwise all 6.
pub fn outward_box(
    p: &mut Vec<SurfacePatch>,
    min: Vec3,
    max: Vec3,
    mat: &Material,
    skip_bottom: bool,
) {
    outward_box_faces(
        p,
        min,
        max,
        mat,
        [!skip_bottom, true, true, true, true, true],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_math::Rgb;

    #[test]
    fn panel_facings() {
        let m = Material::matte(Rgb::gray(0.5));
        assert!(rect_panel_xz(Vec3::ZERO, 1.0, 1.0, true, m).frame.w.y > 0.99);
        assert!(rect_panel_xz(Vec3::ZERO, 1.0, 1.0, false, m).frame.w.y < -0.99);
        assert!(rect_panel_xy(Vec3::ZERO, 1.0, 1.0, true, m).frame.w.z > 0.99);
        assert!(rect_panel_xy(Vec3::ZERO, 1.0, 1.0, false, m).frame.w.z < -0.99);
        assert!(rect_panel_yz(Vec3::ZERO, 1.0, 1.0, true, m).frame.w.x > 0.99);
        assert!(rect_panel_yz(Vec3::ZERO, 1.0, 1.0, false, m).frame.w.x < -0.99);
    }

    #[test]
    fn room_shell_faces_point_to_interior() {
        let m = Material::matte(Rgb::gray(0.5));
        let mut p = Vec::new();
        room_shell(&mut p, Vec3::ZERO, Vec3::ONE, [m, m, m, m, m, m]);
        assert_eq!(p.len(), 6);
        let center = Vec3::splat(0.5);
        for (i, sp) in p.iter().enumerate() {
            let dir = (center - sp.patch.center()).normalized();
            assert!(sp.frame.w.dot(dir) > 0.99, "wall {i}: {:?}", sp.frame.w);
        }
    }

    #[test]
    fn outward_box_faces_point_away_from_center() {
        let m = Material::matte(Rgb::gray(0.5));
        let mut p = Vec::new();
        outward_box(&mut p, Vec3::ZERO, Vec3::ONE, &m, false);
        assert_eq!(p.len(), 6);
        let center = Vec3::splat(0.5);
        for sp in &p {
            let dir = (sp.patch.center() - center).normalized();
            assert!(sp.frame.w.dot(dir) > 0.99);
        }
    }

    #[test]
    fn skip_bottom_emits_five() {
        let m = Material::matte(Rgb::gray(0.5));
        let mut p = Vec::new();
        outward_box(&mut p, Vec3::ZERO, Vec3::ONE, &m, true);
        assert_eq!(p.len(), 5);
        // None of them faces down.
        assert!(p.iter().all(|sp| sp.frame.w.y > -0.5));
    }
}
