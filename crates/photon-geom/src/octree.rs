//! Octree spatial decomposition for nearest-hit ray queries.
//!
//! Patches are inserted into every leaf octant their bounding box overlaps.
//! Queries traverse children in the order the ray enters them and prune any
//! octant whose entry parameter lies beyond the best hit found so far, which
//! makes the first surviving hit the global nearest (duplicated patch
//! references across octants cost redundant tests but never correctness).
//!
//! Construction is top-down: a node holding more than [`LEAF_CAPACITY`]
//! patches splits into eight octants (until [`MAX_DEPTH`]), each receiving
//! the patches whose boxes overlap it.

use crate::scene::{SceneHit, SurfacePatch};
use photon_math::{Aabb, Ray};

/// Maximum tree depth; 2^8 cells per axis is plenty for the paper's scenes.
pub const MAX_DEPTH: u32 = 8;
/// A node holding more than this many patches splits (unless at max depth).
pub const LEAF_CAPACITY: usize = 8;

/// Arena-allocated octree over patch indices.
#[derive(Clone, Debug)]
pub struct Octree {
    nodes: Vec<Node>,
    bounds: Aabb,
}

#[derive(Clone, Debug)]
struct Node {
    bounds: Aabb,
    /// Arena indices of the eight children, or `None` for a leaf.
    children: Option<[u32; 8]>,
    /// Patch indices stored in this node (leaves only).
    items: Vec<u32>,
}

/// Structural statistics, reported by the Fig 4.6 demo and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OctreeStats {
    /// Total nodes in the arena.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Maximum depth reached.
    pub max_depth: u32,
    /// Total patch references across leaves (can exceed the patch count
    /// because a patch overlapping several octants is stored in each).
    pub item_refs: usize,
}

impl Octree {
    /// Builds the tree over `patches` within `bounds`.
    pub fn build(patches: &[SurfacePatch], bounds: Aabb) -> Self {
        let boxes: Vec<Aabb> = patches
            .iter()
            .map(|p| p.patch.aabb().padded(1e-9))
            .collect();
        let all: Vec<u32> = (0..patches.len() as u32).collect();
        let mut tree = Octree {
            nodes: Vec::new(),
            bounds,
        };
        tree.build_node(bounds, all, &boxes, 0);
        tree
    }

    /// Recursively constructs the node for `bounds` holding `items`;
    /// returns its arena index.
    fn build_node(&mut self, bounds: Aabb, items: Vec<u32>, boxes: &[Aabb], depth: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            bounds,
            children: None,
            items: Vec::new(),
        });
        if items.len() <= LEAF_CAPACITY || depth >= MAX_DEPTH {
            self.nodes[idx as usize].items = items;
            return idx;
        }
        let octants = bounds.octants();
        let mut parts: [Vec<u32>; 8] = Default::default();
        for &it in &items {
            for (c, ob) in octants.iter().enumerate() {
                if ob.overlaps(&boxes[it as usize]) {
                    parts[c].push(it);
                }
            }
        }
        // If splitting separates nothing (every item spans every octant),
        // keep the leaf: descending would cost 8x memory for no pruning.
        if parts.iter().all(|p| p.len() == items.len()) {
            self.nodes[idx as usize].items = items;
            return idx;
        }
        let mut children = [0u32; 8];
        for (c, ob) in octants.iter().enumerate() {
            let child_items = std::mem::take(&mut parts[c]);
            children[c] = self.build_node(*ob, child_items, boxes, depth + 1);
        }
        self.nodes[idx as usize].children = Some(children);
        idx
    }

    /// Nearest hit along `ray` within `(t_min, t_max)` — the paper's
    /// `DetermineIntersection` accelerated by the geometry octree.
    pub fn intersect(
        &self,
        patches: &[SurfacePatch],
        ray: &Ray,
        t_min: f64,
        t_max: f64,
    ) -> Option<SceneHit> {
        let mut best: Option<SceneHit> = None;
        let mut limit = t_max;
        // The root box must be entered at all for any hit to exist.
        if self.nodes.is_empty() || self.bounds.hit(ray, t_min, limit).is_none() {
            return None;
        }
        self.visit(0, patches, ray, t_min, &mut limit, &mut best);
        best
    }

    fn visit(
        &self,
        node: usize,
        patches: &[SurfacePatch],
        ray: &Ray,
        t_min: f64,
        limit: &mut f64,
        best: &mut Option<SceneHit>,
    ) {
        let n = &self.nodes[node];
        let Some(children) = n.children else {
            for &pi in &n.items {
                let sp = &patches[pi as usize];
                if let Some(h) = sp.patch.intersect(ray, t_min, *limit) {
                    *limit = h.t;
                    *best = Some(SceneHit {
                        patch_id: pi,
                        t: h.t,
                        point: h.point,
                        s: h.s,
                        v: h.v,
                        front: ray.dir.dot(sp.frame.w) < 0.0,
                    });
                }
            }
            return;
        };
        // Order children by ray entry parameter; prune those entered beyond
        // the current best hit.
        let mut order: [(f64, u32); 8] = [(f64::INFINITY, 0); 8];
        let mut cnt = 0;
        for &ci in &children {
            let cn = &self.nodes[ci as usize];
            if cn.children.is_none() && cn.items.is_empty() {
                continue; // empty leaf
            }
            if let Some((t0, _)) = cn.bounds.hit(ray, t_min, *limit) {
                order[cnt] = (t0, ci);
                cnt += 1;
            }
        }
        order[..cnt].sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(t0, ci) in &order[..cnt] {
            if t0 > *limit {
                break;
            }
            self.visit(ci as usize, patches, ray, t_min, limit, best);
        }
    }

    /// Root bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Structural statistics.
    pub fn stats(&self) -> OctreeStats {
        let mut s = OctreeStats {
            nodes: self.nodes.len(),
            ..Default::default()
        };
        self.stat_walk(0, 0, &mut s);
        s
    }

    fn stat_walk(&self, node: usize, depth: u32, s: &mut OctreeStats) {
        let n = &self.nodes[node];
        match n.children {
            None => {
                s.leaves += 1;
                s.item_refs += n.items.len();
                s.max_depth = s.max_depth.max(depth);
            }
            Some(children) => {
                for ci in children {
                    self.stat_walk(ci as usize, depth + 1, s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use photon_math::{Patch, Rgb, Vec3};
    use photon_rng::{Lcg48, PhotonRng};

    /// A jittered grid of small floor tiles, good octree fodder.
    fn tile_scene(n: usize, seed: u64) -> Vec<SurfacePatch> {
        let mut rng = Lcg48::new(seed);
        let mut patches = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f64 + 0.1 * rng.next_f64();
                let z = j as f64 + 0.1 * rng.next_f64();
                let y = rng.next_f64() * 2.0;
                let p = Patch::from_origin_edges(
                    Vec3::new(x, y, z),
                    Vec3::new(0.8, 0.0, 0.0),
                    Vec3::new(0.0, 0.0, 0.8),
                );
                patches.push(SurfacePatch::new(p, Material::matte(Rgb::gray(0.5))));
            }
        }
        patches
    }

    fn bounds_of(patches: &[SurfacePatch]) -> Aabb {
        patches
            .iter()
            .fold(Aabb::EMPTY, |b, p| b.union(&p.patch.aabb()))
            .padded(1e-6)
    }

    fn brute(patches: &[SurfacePatch], ray: &Ray) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        let mut limit = f64::INFINITY;
        for (i, sp) in patches.iter().enumerate() {
            if let Some(h) = sp.patch.intersect(ray, 1e-7, limit) {
                limit = h.t;
                best = Some((i as u32, h.t));
            }
        }
        best
    }

    #[test]
    fn octree_matches_brute_force_on_random_rays() {
        let patches = tile_scene(8, 42);
        let tree = Octree::build(&patches, bounds_of(&patches));
        let mut rng = Lcg48::new(7);
        let mut hits = 0;
        for _ in 0..500 {
            let origin = Vec3::new(
                rng.next_f64() * 8.0,
                rng.next_f64() * 4.0 - 1.0,
                rng.next_f64() * 8.0,
            );
            let dir = Vec3::new(
                rng.next_f64() * 2.0 - 1.0,
                rng.next_f64() * 2.0 - 1.0,
                rng.next_f64() * 2.0 - 1.0,
            )
            .normalized();
            let ray = Ray::new(origin, dir);
            let fast = tree.intersect(&patches, &ray, 1e-7, f64::INFINITY);
            let slow = brute(&patches, &ray);
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some((pi, t))) => {
                    hits += 1;
                    assert_eq!(f.patch_id, pi, "different patch");
                    assert!((f.t - t).abs() < 1e-9, "different t");
                }
                (f, s) => panic!("octree {f:?} vs brute {s:?}"),
            }
        }
        assert!(hits > 50, "test rays barely hit anything ({hits})");
    }

    #[test]
    fn tree_actually_subdivides() {
        let patches = tile_scene(8, 1);
        let tree = Octree::build(&patches, bounds_of(&patches));
        let s = tree.stats();
        assert!(s.nodes > 8, "{s:?}");
        assert!(s.max_depth >= 1);
        assert!(s.leaves > 1);
        assert!(s.item_refs >= patches.len());
    }

    #[test]
    fn small_scene_stays_single_leaf() {
        let patches = tile_scene(2, 2); // 4 patches <= capacity
        let tree = Octree::build(&patches, bounds_of(&patches));
        assert_eq!(tree.stats().nodes, 1);
    }

    #[test]
    fn ray_outside_bounds_misses_cheaply() {
        let patches = tile_scene(4, 3);
        let tree = Octree::build(&patches, bounds_of(&patches));
        let ray = Ray::new(Vec3::new(100.0, 100.0, 100.0), Vec3::X);
        assert!(tree
            .intersect(&patches, &ray, 1e-7, f64::INFINITY)
            .is_none());
    }

    #[test]
    fn respects_t_max() {
        let patches = tile_scene(4, 4);
        let tree = Octree::build(&patches, bounds_of(&patches));
        // A ray straight down onto a tile from high above.
        let ray = Ray::new(Vec3::new(0.5, 50.0, 0.5), Vec3::new(0.0, -1.0, 0.0));
        let hit = tree.intersect(&patches, &ray, 1e-7, f64::INFINITY);
        assert!(hit.is_some());
        let t = hit.unwrap().t;
        assert!(tree.intersect(&patches, &ray, 1e-7, t - 1.0).is_none());
    }
}
