//! Scene geometry for the Photon global-illumination system.
//!
//! A scene is a flat list of planar quadrilateral patches
//! ([`SurfacePatch`]), each with a [`Material`] and a cached local frame, a
//! set of [`Luminaire`]s referencing emitting patches, and an [`Octree`] over
//! the patches for logarithmic ray intersection (the paper's geometry
//! decomposition, Fig 4.6 bottom layer).
//!
//! The octree is the structure the dissertation singles out for future
//! massive parallelism: it "orders the intersection testing for a given
//! photon such that we only test polygons in the space the photon is
//! traveling through" (ch. 6). Traversal here visits child octants in ray
//! order and prunes octants entered beyond the best hit, so the first
//! accepted hit is provably the nearest.

#![deny(missing_docs)]

pub mod material;
pub mod octree;
pub mod scene;

pub use material::{Material, SurfaceKind};
pub use octree::{Octree, OctreeStats};
pub use scene::{Luminaire, Scene, SceneHit, SurfacePatch};
