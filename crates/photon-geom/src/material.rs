//! Surface materials.
//!
//! Photon's reflection model follows the intent of He et al. (the full
//! physical-optics model cited in ch. 4) with a layered substitute documented
//! in DESIGN.md: a Lambertian diffuse term, a glossy lobe of configurable
//! tightness, an ideal mirror term, and probabilistic absorption (Russian
//! roulette). The *material* only stores the coefficients; the sampling
//! logic lives in `photon-core::reflect`.

use photon_math::Rgb;

/// Broad classification used by load balancing, the viewer and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SurfaceKind {
    /// Purely diffuse reflector.
    Diffuse,
    /// Mixture of diffuse and glossy/mirror reflection.
    Glossy,
    /// Dominantly ideal mirror.
    Mirror,
    /// Light-emitting surface.
    Emitter,
}

/// Reflection/emission coefficients of a surface.
///
/// Energy budget per interaction: a photon is reflected with probability
/// `albedo = mean(diffuse) + specular + mirror` (must be `<= 1`; the
/// remainder absorbs). Given reflection, the branch (diffuse / glossy /
/// mirror) is chosen in proportion to the same terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Diffuse reflectance per channel (Lambertian).
    pub diffuse: Rgb,
    /// Energy fraction reflected into the glossy lobe.
    pub specular: f64,
    /// Glossy lobe tightness (Phong-style exponent; larger = tighter).
    pub gloss_exponent: f64,
    /// Energy fraction reflected as an ideal mirror.
    pub mirror: f64,
    /// Emitted radiance per channel (nonzero marks an emitter; actual
    /// emission strength is configured on the [`crate::Luminaire`]).
    pub emission: Rgb,
}

impl Material {
    /// A matte (Lambertian) surface with the given reflectance.
    pub fn matte(diffuse: Rgb) -> Self {
        Material {
            diffuse,
            specular: 0.0,
            gloss_exponent: 1.0,
            mirror: 0.0,
            emission: Rgb::BLACK,
        }
    }

    /// A near-ideal mirror keeping `reflectivity` of the energy.
    pub fn mirror(reflectivity: f64) -> Self {
        Material {
            diffuse: Rgb::BLACK,
            specular: 0.0,
            gloss_exponent: 1.0,
            mirror: reflectivity,
            emission: Rgb::BLACK,
        }
    }

    /// A glossy surface: diffuse base plus a specular lobe.
    pub fn glossy(diffuse: Rgb, specular: f64, gloss_exponent: f64) -> Self {
        Material {
            diffuse,
            specular,
            gloss_exponent,
            mirror: 0.0,
            emission: Rgb::BLACK,
        }
    }

    /// An emitting surface with the given radiance color.
    pub fn emitter(emission: Rgb) -> Self {
        Material {
            diffuse: Rgb::BLACK,
            specular: 0.0,
            gloss_exponent: 1.0,
            mirror: 0.0,
            emission,
        }
    }

    /// Total reflection probability (Russian-roulette survival).
    #[inline]
    pub fn albedo(&self) -> f64 {
        self.diffuse.mean() + self.specular + self.mirror
    }

    /// True when the energy budget is physical (`albedo <= 1`, all
    /// coefficients nonnegative).
    pub fn is_physical(&self) -> bool {
        self.diffuse.r >= 0.0
            && self.diffuse.g >= 0.0
            && self.diffuse.b >= 0.0
            && self.specular >= 0.0
            && self.mirror >= 0.0
            && self.albedo() <= 1.0 + 1e-12
    }

    /// Broad classification.
    pub fn kind(&self) -> SurfaceKind {
        if self.emission.max_channel() > 0.0 {
            SurfaceKind::Emitter
        } else if self.mirror > 0.5 {
            SurfaceKind::Mirror
        } else if self.specular + self.mirror > 1e-9 {
            SurfaceKind::Glossy
        } else {
            SurfaceKind::Diffuse
        }
    }

    /// True when any light leaving this surface depends on view angle.
    pub fn is_view_dependent(&self) -> bool {
        self.specular + self.mirror > 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn albedo_sums_terms() {
        let m = Material {
            diffuse: Rgb::new(0.3, 0.6, 0.9), // mean 0.6
            specular: 0.1,
            gloss_exponent: 50.0,
            mirror: 0.2,
            emission: Rgb::BLACK,
        };
        assert!((m.albedo() - 0.9).abs() < 1e-12);
        assert!(m.is_physical());
    }

    #[test]
    fn over_unity_albedo_is_unphysical() {
        let m = Material {
            specular: 0.5,
            ..Material::matte(Rgb::gray(0.8))
        };
        assert!(!m.is_physical());
    }

    #[test]
    fn kinds_classify() {
        assert_eq!(Material::matte(Rgb::gray(0.5)).kind(), SurfaceKind::Diffuse);
        assert_eq!(Material::mirror(0.9).kind(), SurfaceKind::Mirror);
        assert_eq!(
            Material::glossy(Rgb::gray(0.4), 0.2, 80.0).kind(),
            SurfaceKind::Glossy
        );
        assert_eq!(Material::emitter(Rgb::WHITE).kind(), SurfaceKind::Emitter);
    }

    #[test]
    fn view_dependence() {
        assert!(!Material::matte(Rgb::gray(0.5)).is_view_dependent());
        assert!(Material::mirror(0.9).is_view_dependent());
        assert!(Material::glossy(Rgb::gray(0.2), 0.3, 10.0).is_view_dependent());
    }
}
