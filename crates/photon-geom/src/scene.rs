//! Scenes: patches, luminaires, and nearest-hit queries.

use crate::material::Material;
use crate::octree::Octree;
use photon_math::{Aabb, Onb, Patch, Ray, Rgb, Vec3};

/// Distance offset applied when re-emitting reflected photons so they do not
/// re-hit the surface they left.
pub const RAY_EPS: f64 = 1e-7;

/// A scene patch: geometry + material + cached derived quantities.
#[derive(Clone, Debug)]
pub struct SurfacePatch {
    /// The quadrilateral.
    pub patch: Patch,
    /// Its material.
    pub material: Material,
    /// Cached local frame (`w` = front normal, `u` anchored to the s edge);
    /// defines the zero azimuth of the angular histogram axes.
    pub frame: Onb,
    /// Cached surface area.
    pub area: f64,
}

impl SurfacePatch {
    /// Builds a surface patch, caching frame and area.
    pub fn new(patch: Patch, material: Material) -> Self {
        let frame = patch.frame();
        let area = patch.area();
        SurfacePatch {
            patch,
            material,
            frame,
            area,
        }
    }
}

/// A light source: an emitting patch with power and collimation.
#[derive(Clone, Copy, Debug)]
pub struct Luminaire {
    /// Index of the emitting patch in the scene.
    pub patch_id: u32,
    /// Total radiant power (energy per emitted-photon batch is
    /// `power / photons`).
    pub power: Rgb,
    /// Scale of the unit circle in the generation kernel (ch. 4, Fig 4.4):
    /// `1.0` = fully diffuse hemisphere; `0.005` collimates emission to
    /// ±0.29°, the paper's sun model ("the unit circle must be scaled such
    /// that θ is one quarter degree").
    pub collimation: f64,
}

/// Result of a nearest-hit query.
#[derive(Clone, Copy, Debug)]
pub struct SceneHit {
    /// Index of the patch hit.
    pub patch_id: u32,
    /// Ray parameter of the hit.
    pub t: f64,
    /// World-space hit point.
    pub point: Vec3,
    /// Bilinear coordinates on the patch.
    pub s: f64,
    /// Bilinear coordinates on the patch.
    pub v: f64,
    /// True when the front face (normal side) was hit.
    pub front: bool,
}

/// A complete scene: patches, luminaires, octree acceleration.
#[derive(Clone, Debug)]
pub struct Scene {
    patches: Vec<SurfacePatch>,
    luminaires: Vec<Luminaire>,
    octree: Octree,
    bounds: Aabb,
}

impl Scene {
    /// Builds a scene and its octree from patches and luminaires.
    ///
    /// Every `Luminaire::patch_id` must reference a patch whose material has
    /// nonzero emission.
    pub fn new(patches: Vec<SurfacePatch>, luminaires: Vec<Luminaire>) -> Self {
        assert!(!patches.is_empty(), "a scene needs at least one patch");
        for l in &luminaires {
            let m = &patches[l.patch_id as usize].material;
            assert!(
                m.emission.max_channel() > 0.0,
                "luminaire patch {} has no emissive material",
                l.patch_id
            );
        }
        let bounds = patches
            .iter()
            .fold(Aabb::EMPTY, |b, p| b.union(&p.patch.aabb()))
            .padded(1e-6);
        let octree = Octree::build(&patches, bounds);
        Scene {
            patches,
            luminaires,
            octree,
            bounds,
        }
    }

    /// All patches.
    #[inline]
    pub fn patches(&self) -> &[SurfacePatch] {
        &self.patches
    }

    /// Patch by id.
    #[inline]
    pub fn patch(&self, id: u32) -> &SurfacePatch {
        &self.patches[id as usize]
    }

    /// Number of defining polygons (Table 5.1, column 1).
    #[inline]
    pub fn polygon_count(&self) -> usize {
        self.patches.len()
    }

    /// All luminaires.
    #[inline]
    pub fn luminaires(&self) -> &[Luminaire] {
        &self.luminaires
    }

    /// Total emitted power over all luminaires.
    pub fn total_power(&self) -> Rgb {
        self.luminaires
            .iter()
            .fold(Rgb::BLACK, |acc, l| acc + l.power)
    }

    /// Scene bounding box.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The octree (exposed for stats and benches).
    #[inline]
    pub fn octree(&self) -> &Octree {
        &self.octree
    }

    /// Nearest patch hit along `ray` with `t` in `(RAY_EPS, t_max)`, using
    /// the octree — the paper's `DetermineIntersection`.
    pub fn intersect(&self, ray: &Ray, t_max: f64) -> Option<SceneHit> {
        self.octree.intersect(&self.patches, ray, RAY_EPS, t_max)
    }

    /// Nearest hit by exhaustive scan — the correctness oracle for the
    /// octree, and the baseline of the `intersect` bench.
    pub fn intersect_brute_force(&self, ray: &Ray, t_max: f64) -> Option<SceneHit> {
        let mut best: Option<SceneHit> = None;
        let mut limit = t_max;
        for (i, sp) in self.patches.iter().enumerate() {
            if let Some(h) = sp.patch.intersect(ray, RAY_EPS, limit) {
                limit = h.t;
                best = Some(SceneHit {
                    patch_id: i as u32,
                    t: h.t,
                    point: h.point,
                    s: h.s,
                    v: h.v,
                    front: ray.dir.dot(sp.frame.w) < 0.0,
                });
            }
        }
        best
    }

    /// True when the straight segment between `a` and `b` is unobstructed —
    /// the geometry term `g(x, x')` of the Rendering Equation, used by the
    /// radiosity and ray-tracing baselines.
    pub fn visible(&self, a: Vec3, b: Vec3) -> bool {
        let d = b - a;
        let len = d.length();
        if len < RAY_EPS {
            return true;
        }
        let ray = Ray::new(a, d / len);
        match self.intersect(&ray, len - 10.0 * RAY_EPS) {
            None => true,
            Some(h) => h.t >= len - 10.0 * RAY_EPS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_math::Rgb;

    fn two_walls() -> Scene {
        // Wall A at z = 0 facing +z, wall B at z = 2 facing -z (toward A).
        let a = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y);
        let b = Patch::from_origin_edges(Vec3::new(0.0, 0.0, 2.0), Vec3::Y, Vec3::X);
        let mut pa = SurfacePatch::new(a, Material::matte(Rgb::gray(0.5)));
        pa.material.emission = Rgb::WHITE;
        let pb = SurfacePatch::new(b, Material::matte(Rgb::gray(0.5)));
        Scene::new(
            vec![pa, pb],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn nearest_hit_is_returned() {
        let scene = two_walls();
        let ray = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        let hit = scene.intersect(&ray, f64::INFINITY).expect("hit");
        assert_eq!(hit.patch_id, 0);
        assert!((hit.t - 1.0).abs() < 1e-9);
        assert!(!hit.front); // approaching wall A from behind (-z side)
    }

    #[test]
    fn brute_force_agrees() {
        let scene = two_walls();
        let ray = Ray::new(Vec3::new(0.25, 0.75, 0.5), Vec3::Z);
        let a = scene.intersect(&ray, f64::INFINITY).unwrap();
        let b = scene.intersect_brute_force(&ray, f64::INFINITY).unwrap();
        assert_eq!(a.patch_id, b.patch_id);
        assert!((a.t - b.t).abs() < 1e-9);
    }

    #[test]
    fn visibility_between_facing_walls() {
        let scene = two_walls();
        let a = Vec3::new(0.5, 0.5, 0.0);
        let b = Vec3::new(0.5, 0.5, 2.0);
        assert!(scene.visible(a + Vec3::Z * 1e-6, b - Vec3::Z * 1e-6));
    }

    #[test]
    fn visibility_blocked_by_inserted_wall() {
        let a = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y);
        let b = Patch::from_origin_edges(Vec3::new(0.0, 0.0, 2.0), Vec3::Y, Vec3::X);
        let blocker =
            Patch::from_origin_edges(Vec3::new(-1.0, -1.0, 1.0), Vec3::X * 3.0, Vec3::Y * 3.0);
        let mut pa = SurfacePatch::new(a, Material::matte(Rgb::gray(0.5)));
        pa.material.emission = Rgb::WHITE;
        let scene = Scene::new(
            vec![
                pa,
                SurfacePatch::new(b, Material::matte(Rgb::gray(0.5))),
                SurfacePatch::new(blocker, Material::matte(Rgb::gray(0.5))),
            ],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        );
        assert!(!scene.visible(Vec3::new(0.5, 0.5, 1e-6), Vec3::new(0.5, 0.5, 2.0 - 1e-6)));
    }

    #[test]
    #[should_panic]
    fn luminaire_must_be_emissive() {
        let a = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y);
        Scene::new(
            vec![SurfacePatch::new(a, Material::matte(Rgb::gray(0.5)))],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        );
    }

    #[test]
    fn total_power_sums() {
        let scene = two_walls();
        assert_eq!(scene.total_power(), Rgb::WHITE);
    }
}
